// Package dash emulates DASH adaptive video streaming over the
// transport: a BOLA bitrate-adaptation agent (Spiteri et al., INFOCOM
// '16 — the algorithm the paper's Proteus-H evaluation uses), a playback
// buffer with startup, stall, and rebuffer accounting, and the §4.4
// cross-layer rules that drive the Proteus-H switching threshold
// (sufficient-rate, buffer-limit, and emergency).
//
// The receiver-side player mirrors the paper's methodology: the client
// consumes received bytes into an emulated playback buffer and uses a
// side channel (in-process calls) to tell the sender the requested
// bitrate, when to stop and resume, and the hybrid threshold.
package dash

import (
	"math"
	"math/rand"

	"pccproteus/internal/core"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

// Video describes one title: a bitrate ladder and chunked timing.
type Video struct {
	Name     string
	Ladder   []float64 // available bitrates in Mbps, ascending
	ChunkDur float64   // seconds of media per chunk
	Chunks   int
}

// MaxBitrate returns the top rung of the ladder.
func (v Video) MaxBitrate() float64 { return v.Ladder[len(v.Ladder)-1] }

// ChunkBytes returns the size of one chunk at ladder index q.
func (v Video) ChunkBytes(q int) int64 {
	return int64(v.Ladder[q] * 1e6 / 8 * v.ChunkDur)
}

// FourKLadder is a representative 4K ladder (top rung > 40 Mbps, §6.3).
var FourKLadder = []float64{2.5, 5, 8, 12, 18, 25, 32, 45}

// HDLadder is a representative 1080P ladder (top rung > 10 Mbps, §6.3).
var HDLadder = []float64{0.6, 1.2, 2.5, 4.5, 7, 11}

// Corpus generates the paper's evaluation corpus: n4k 4K titles and nHD
// 1080P titles, 3-second chunks, at least 3 minutes long, with the top
// bitrates perturbed slightly per title.
func Corpus(n4k, nHD int, rng *rand.Rand) []Video {
	var out []Video
	mk := func(name string, base []float64, i int) Video {
		ladder := make([]float64, len(base))
		scale := 0.95 + 0.1*rng.Float64()
		for j, b := range base {
			ladder[j] = b * scale
		}
		return Video{Name: name, Ladder: ladder, ChunkDur: 3, Chunks: 70 + rng.Intn(30)}
	}
	for i := 0; i < n4k; i++ {
		out = append(out, mk("4k", FourKLadder, i))
	}
	for i := 0; i < nHD; i++ {
		out = append(out, mk("1080p", HDLadder, i))
	}
	return out
}

// ABR chooses the ladder index for the next chunk given the playback
// buffer level in seconds.
type ABR interface {
	Choose(bufferSec float64, v Video) int
}

// BOLA is the buffer-based Lyapunov ABR of Spiteri et al., in its BOLA-
// BASIC form: choose the quality m maximizing (V·(v_m + γp) − Q)/S_m,
// with utilities v_m = ln(S_m/S_1) and control parameters derived from
// the buffer capacity.
type BOLA struct {
	BufferCap float64 // seconds
	GammaP    float64 // γ·p utility offset; 5 is the dash.js default
}

// NewBOLA returns a BOLA agent for the given playback buffer capacity.
func NewBOLA(bufferCap float64) *BOLA { return &BOLA{BufferCap: bufferCap, GammaP: 5} }

// Choose implements ABR.
func (b *BOLA) Choose(bufferSec float64, v Video) int {
	// Utilities relative to the lowest rung.
	n := len(v.Ladder)
	util := make([]float64, n)
	for m := 1; m < n; m++ {
		util[m] = math.Log(v.Ladder[m] / v.Ladder[0])
	}
	// V chosen so the top quality is selected exactly when the buffer is
	// nearly full (Spiteri et al. §III).
	qMax := b.BufferCap / v.ChunkDur
	vParam := (qMax - 1) / (util[n-1] + b.GammaP)
	q := bufferSec / v.ChunkDur
	best, bestScore := 0, negInf
	for m := 0; m < n; m++ {
		score := (vParam*(util[m]+b.GammaP) - q) / (v.Ladder[m] * v.ChunkDur)
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// ForceMax always requests the top rung (the Figure 13 stress test).
type ForceMax struct{}

// Choose implements ABR.
func (ForceMax) Choose(float64, Video) int { return -1 } // -1 = top rung

const negInf = -1e308

// Metrics accumulates playback quality-of-experience counters.
type Metrics struct {
	ChunksPlayed  int
	BitrateSum    float64 // Mbps·chunk
	PlayTime      float64
	StallTime     float64
	StartupTime   float64
	Rebuffers     int
	HighestChunks int // chunks fetched at the top rung
}

// AvgBitrate returns mean requested chunk bitrate in Mbps.
func (m Metrics) AvgBitrate() float64 {
	if m.ChunksPlayed == 0 {
		return 0
	}
	return m.BitrateSum / float64(m.ChunksPlayed)
}

// RebufferRatio returns stall time as a fraction of watch time.
func (m Metrics) RebufferRatio() float64 {
	total := m.PlayTime + m.StallTime
	if total == 0 {
		return 0
	}
	return m.StallTime / total
}

// Player streams one video over a sender. It owns the sender's pacing
// via chunk-sized Extend calls plus Pause/Resume, and optionally drives
// a Proteus-H utility's switching threshold via the §4.4 rules.
type Player struct {
	Sim    *sim.Sim
	Sender *transport.Sender
	Video  Video
	ABR    ABR

	// BufferCap is the playback buffer capacity in seconds.
	BufferCap float64
	// StartupChunks is how many chunks must arrive before playback
	// starts (dash.js begins quickly; 1 chunk is its effective minimum).
	StartupChunks int
	// Hybrid, when set, receives threshold updates per §4.4: the
	// sufficient-rate rule (G=1.5), the buffer-limit rule, and the
	// emergency rule on rebuffering.
	Hybrid *core.Hybrid
	// SufficientRateG is the sufficient-rate margin (1.5 in the paper).
	SufficientRateG float64

	buffer    float64 // seconds of media buffered
	lastT     float64
	started   bool
	playing   bool
	ended     bool // playback finished (all chunks fetched and played)
	nextChunk int
	pending   bool // a chunk request is in flight
	met       Metrics
	full      bool
	fullTimer *sim.Timer
	dryTimer  *sim.Timer
}

// NewPlayer assembles a player. Call Start to begin streaming.
func NewPlayer(s *sim.Sim, snd *transport.Sender, v Video, abr ABR, bufferCap float64) *Player {
	p := &Player{
		Sim: s, Sender: snd, Video: v, ABR: abr,
		BufferCap: bufferCap, StartupChunks: 1, SufficientRateG: 1.5,
	}
	snd.OnComplete = p.onChunkDone
	return p
}

// Metrics returns a snapshot of the player's QoE counters, settling
// playback time up to the current instant.
func (p *Player) Metrics() Metrics {
	p.advance(p.Sim.Now())
	return p.met
}

// Start begins streaming at the current simulation time.
func (p *Player) Start() {
	p.lastT = p.Sim.Now()
	p.requestNext()
	p.Sender.Start()
}

// advance settles playback between events.
func (p *Player) advance(now float64) {
	dt := now - p.lastT
	if dt <= 0 {
		return
	}
	p.lastT = now
	if p.ended {
		return
	}
	if !p.started {
		p.met.StartupTime += dt
		return
	}
	if p.playing {
		if p.buffer >= dt {
			p.buffer -= dt
			p.met.PlayTime += dt
		} else {
			p.met.PlayTime += p.buffer
			p.playing = false
			if p.Done() {
				// End of stream: the buffer played out with nothing
				// left to fetch — that is not a stall.
				p.buffer = 0
				p.ended = true
				return
			}
			p.met.StallTime += dt - p.buffer
			p.buffer = 0
			p.met.Rebuffers++
			// Emergency rule: on rebuffering the threshold is infinite
			// (pure primary) until the video resumes.
			if p.Hybrid != nil {
				p.Hybrid.SetThreshold(math.Inf(1))
			}
		}
		p.armDryTimer()
	} else {
		p.met.StallTime += dt
	}
}

func (p *Player) requestNext() {
	if p.pending || p.nextChunk >= p.Video.Chunks {
		return
	}
	now := p.Sim.Now()
	p.advance(now)
	// The client only requests when there is space in the buffer.
	if p.BufferCap-p.buffer < p.Video.ChunkDur {
		p.waitForSpace()
		return
	}
	q := p.ABR.Choose(p.buffer, p.Video)
	if q < 0 || q >= len(p.Video.Ladder) {
		q = len(p.Video.Ladder) - 1
	}
	p.updateThreshold(q)
	p.pending = true
	p.met.BitrateSum += p.Video.Ladder[q]
	p.met.ChunksPlayed++
	if q == len(p.Video.Ladder)-1 {
		p.met.HighestChunks++
	}
	p.Sender.Extend(p.Video.ChunkBytes(q))
	p.Sender.Resume()
}

// updateThreshold applies §4.4 rules 1 and 2.
func (p *Player) updateThreshold(q int) {
	if p.Hybrid == nil {
		return
	}
	if !p.started || !p.playing {
		// Emergency rule holds until playback (re)starts.
		p.Hybrid.SetThreshold(math.Inf(1))
		return
	}
	thr := p.SufficientRateG * p.Video.MaxBitrate()
	free := (p.BufferCap - p.buffer) / p.Video.ChunkDur
	if free < 2 {
		if lim := 1 / (2 - free) * p.Video.Ladder[q]; lim < thr {
			thr = lim
		}
	}
	p.Hybrid.SetThreshold(thr)
}

// waitForSpace pauses the transport until the playback buffer has room
// for one more chunk.
func (p *Player) waitForSpace() {
	if p.full {
		return
	}
	p.full = true
	p.Sender.Pause()
	wait := p.buffer - (p.BufferCap - p.Video.ChunkDur)
	if wait < 0.01 {
		wait = 0.01
	}
	p.fullTimer = p.Sim.After(wait, func() {
		p.full = false
		p.requestNext()
	})
}

func (p *Player) onChunkDone(now float64) {
	p.advance(now)
	p.pending = false
	p.nextChunk++
	p.buffer += p.Video.ChunkDur
	if !p.started && p.nextChunk >= p.StartupChunks {
		p.started = true
		p.playing = true
	}
	if p.started && !p.playing && p.buffer >= p.Video.ChunkDur {
		p.playing = true // resume after rebuffer
	}
	p.armDryTimer()
	p.requestNext()
}

// armDryTimer schedules a wakeup at the moment the playback buffer would
// run dry, so stalls (and the §4.4 emergency rule) take effect exactly
// when they happen rather than at the next chunk arrival.
func (p *Player) armDryTimer() {
	if p.dryTimer != nil {
		p.dryTimer.Stop()
		p.dryTimer = nil
	}
	if !p.playing || p.Done() {
		return
	}
	p.dryTimer = p.Sim.After(p.buffer+1e-9, func() {
		p.dryTimer = nil
		p.advance(p.Sim.Now())
	})
}

// Done reports whether the whole video has been fetched.
func (p *Player) Done() bool { return p.nextChunk >= p.Video.Chunks }
