package adversary

// Shrink minimizes a violating schedule: it greedily seeks the
// shortest prefix and the fewest, shortest, mildest segments that
// still violate the target invariant, re-evaluating each candidate
// reduction. The loop is deterministic and spends at most budget
// evaluations; it returns the reduced schedule and the evaluations
// used.
//
// Every accepted step keeps the target invariant violated, so the
// result reproduces the original verdict by construction.
func Shrink(ev *evaluator, s Schedule, target string, budget int) (Schedule, int) {
	used := 0
	violates := func(c Schedule) bool {
		if used >= budget {
			return false
		}
		used++
		e := ev.evalOne(c)
		return findVerdict(e.verdicts, target).Violated()
	}
	cur := s.Canonical(ev.sc)

	// Pass 1: shortest reproducing prefix (segments are in start-time
	// order after canonicalization).
	for k := 1; k < len(cur.Segments); k++ {
		c := Schedule{Segments: append([]Segment(nil), cur.Segments[:k]...)}
		if violates(c) {
			cur = c
			break
		}
	}

	// Passes 2..n: iterate reductions to a fixpoint.
	for changed := true; changed && used < budget; {
		changed = false

		// Drop whole segments, last first.
		for i := len(cur.Segments) - 1; i >= 0 && len(cur.Segments) > 1; i-- {
			c := cur.clone()
			c.Segments = append(c.Segments[:i], c.Segments[i+1:]...)
			if violates(c) {
				cur = c
				changed = true
			}
		}

		// Halve durations.
		for i := range cur.Segments {
			c := cur.clone()
			c.Segments[i].Dur = round3(c.Segments[i].Dur / 2)
			c = c.Canonical(ev.sc)
			if scheduleShorter(c, cur) && violates(c) {
				cur = c
				changed = true
			}
		}

		// Soften magnitudes toward neutral: factors toward 1, values
		// toward their minimum.
		for i := range cur.Segments {
			g := cur.Segments[i]
			c := cur.clone()
			switch {
			case g.Kind == KindBWStep || g.Kind == KindBWOsc || g.Kind == KindQueueResize:
				c.Segments[i].Factor = round3(1 + (g.Factor-1)/2)
			case g.Kind == KindDelaySpike || g.Kind == KindLossBurst ||
				g.Kind == KindCorrupt || g.Kind == KindDuplicate:
				c.Segments[i].Value = round3(g.Value / 2)
			default:
				continue
			}
			c = c.Canonical(ev.sc)
			if !schedulesEqual(c, cur) && violates(c) {
				cur = c
				changed = true
			}
		}

		// Pull segments earlier, toward the warmup boundary: a failure
		// that reproduces earlier is a shorter repro in time.
		for i := range cur.Segments {
			g := cur.Segments[i]
			at := round3(g.At - (g.At-ev.sc.Warmup)/2)
			if at >= g.At {
				continue
			}
			c := cur.clone()
			c.Segments[i].At = at
			c = c.Canonical(ev.sc)
			if violates(c) {
				cur = c
				changed = true
			}
		}
	}
	return cur, used
}

// scheduleShorter reports whether a is a strict reduction of b in
// total active time (guards against no-op halvings at the clamp
// floor).
func scheduleShorter(a, b Schedule) bool {
	ta, tb := 0.0, 0.0
	for _, g := range a.Segments {
		ta += g.Dur
	}
	for _, g := range b.Segments {
		tb += g.Dur
	}
	return ta < tb
}

func schedulesEqual(a, b Schedule) bool {
	if len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			return false
		}
	}
	return true
}
