package adversary

import (
	"math"
	"path/filepath"
	"testing"
)

// TestGoldenCorpusReplays re-runs every checked-in counterexample and
// verifies the recorded verdict still reproduces: same invariant, still
// violated, margin unchanged to floating-point noise. A failure here
// means a controller, the emulation, or an invariant tunable changed
// behavior — either fix the regression or re-hunt and re-record the
// corpus (and bump CounterexampleVersion if the contract moved).
func TestGoldenCorpusReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay re-runs full simulations")
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden counterexamples in testdata/")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			ce, vs, err := ReplayFile(f)
			if err != nil {
				t.Fatal(err)
			}
			got := findVerdict(vs, ce.Verdict.Invariant)
			if !got.Violated() {
				t.Fatalf("recorded violation of %q no longer reproduces: %s", ce.Verdict.Invariant, got)
			}
			if math.Abs(got.Margin-ce.Verdict.Margin) > 1e-9 {
				t.Fatalf("margin drifted: recorded %v, replayed %v", ce.Verdict.Margin, got.Margin)
			}
		})
	}
}

func TestCounterexampleRoundTrip(t *testing.T) {
	ce := &Counterexample{
		Version:  CounterexampleVersion,
		Scenario: testScenario("cubic"),
		Seed:     3,
		Schedule: Schedule{Segments: []Segment{{Kind: KindDelaySpike, At: 10, Dur: 4, Value: 0.25}}},
		Verdict:  Verdict{Invariant: "progress", Margin: -0.5, Detail: "x"},
		Fitness:  -0.5,
	}
	path := filepath.Join(t.TempDir(), "ce.json")
	if err := ce.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCounterexample(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != ce.Seed || !schedulesEqual(back.Schedule, ce.Schedule) || back.Verdict != ce.Verdict {
		t.Fatalf("round trip mangled the counterexample: %+v vs %+v", back, ce)
	}
}

func TestReadCounterexampleRejectsWrongVersion(t *testing.T) {
	ce := &Counterexample{
		Version:  CounterexampleVersion + 1,
		Scenario: testScenario("cubic"),
		Seed:     1,
	}
	path := filepath.Join(t.TempDir(), "ce.json")
	if err := ce.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCounterexample(path); err == nil {
		t.Fatal("wrong-version replay file accepted")
	}
}
