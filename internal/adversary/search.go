package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Config parameterizes one hunt.
type Config struct {
	Scenario Scenario
	Budget   int   // schedule evaluations to spend searching
	Seed     int64 // master seed: schedules, runs, everything derives from it
	Jobs     int   // parallel evaluation workers (≤1 = serial)
}

// Result is the outcome of a hunt. When the search found a violation,
// Counterexample holds the minimized schedule and its verdict;
// otherwise Best is the schedule that came closest (smallest margin).
type Result struct {
	Config         Config
	Evals          int
	ShrinkEvals    int
	Best           Schedule
	BestVerdicts   []Verdict
	BestFitness    float64
	Counterexample *Counterexample
	Log            []string // deterministic per-generation progress lines
}

// Search internals. genSize is fixed (not derived from Jobs) so a hunt
// produces identical results whatever the worker count.
const (
	genSize      = 16
	elitePool    = 8
	freshFrac    = 0.15 // fraction of later generations drawn fresh
	shrinkBudget = 150  // extra evaluations granted to the shrinker
)

type evaluated struct {
	schedule Schedule
	verdicts []Verdict
	fitness  float64
}

// evaluator runs schedules against one scenario with a shared baseline.
type evaluator struct {
	sc       Scenario
	seed     int64
	baseline *Baseline
	jobs     int

	mu    sync.Mutex
	count int
}

func (e *evaluator) evalOne(s Schedule) evaluated {
	rc := Run(e.sc, s, e.seed)
	rc.Baseline = e.baseline
	vs := CheckAll(rc)
	e.mu.Lock()
	e.count++
	e.mu.Unlock()
	return evaluated{schedule: rc.Schedule, verdicts: vs, fitness: MinMargin(vs)}
}

// evalBatch evaluates candidates on the worker pool. Results land in
// input order, so the outcome is independent of scheduling.
func (e *evaluator) evalBatch(cands []Schedule) []evaluated {
	out := make([]evaluated, len(cands))
	jobs := e.jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(cands) {
		jobs = len(cands)
	}
	if jobs == 1 {
		for i, c := range cands {
			out[i] = e.evalOne(c)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = e.evalOne(cands[i])
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Hunt searches for a schedule that violates one of the target
// protocol's invariants, then shrinks the first violation found. It is
// deterministic in Config (Jobs affects wall-clock only).
func Hunt(cfg Config) (*Result, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	if cfg.Budget < 1 {
		cfg.Budget = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ev := &evaluator{
		sc:       cfg.Scenario,
		seed:     cfg.Seed,
		baseline: NewBaseline(cfg.Scenario, cfg.Seed),
		jobs:     cfg.Jobs,
	}
	res := &Result{Config: cfg, BestFitness: 2}

	var elites []evaluated
	gen := 0
	for res.Evals < cfg.Budget {
		gen++
		size := genSize
		if rem := cfg.Budget - res.Evals; size > rem {
			size = rem
		}
		cands := make([]Schedule, size)
		for i := range cands {
			if len(elites) == 0 || rng.Float64() < freshFrac {
				cands[i] = RandomSchedule(rng, cfg.Scenario)
			} else {
				cands[i] = Mutate(rng, cfg.Scenario, elites[rng.Intn(len(elites))].schedule)
			}
		}
		batch := ev.evalBatch(cands)
		res.Evals += len(batch)

		// Merge into the elite pool; stable sort keeps ties in arrival
		// order, so the pool is identical run to run.
		elites = append(elites, batch...)
		sort.SliceStable(elites, func(i, j int) bool { return elites[i].fitness < elites[j].fitness })
		if len(elites) > elitePool {
			elites = elites[:elitePool]
		}
		best := elites[0]
		res.Log = append(res.Log, fmt.Sprintf("gen %d: evals=%d best-fitness=%+.4f (%s)",
			gen, res.Evals, best.fitness, worstName(best.verdicts)))
		if best.fitness < 0 {
			break
		}
	}

	best := elites[0]
	res.Best = best.schedule
	res.BestVerdicts = best.verdicts
	res.BestFitness = best.fitness
	if best.fitness >= 0 {
		return res, nil
	}

	// Violation: shrink it to a short reproducing schedule.
	target := worstName(best.verdicts)
	small, evals := Shrink(ev, best.schedule, target, shrinkBudget)
	res.ShrinkEvals = evals
	final := ev.evalOne(small)
	res.Counterexample = &Counterexample{
		Version:  CounterexampleVersion,
		Scenario: cfg.Scenario,
		Seed:     cfg.Seed,
		Schedule: small,
		Verdict:  findVerdict(final.verdicts, target),
		Fitness:  final.fitness,
	}
	return res, nil
}

// worstName returns the invariant with the smallest margin.
func worstName(vs []Verdict) string {
	name, m := "", 2.0
	for _, v := range vs {
		if v.Margin < m {
			m, name = v.Margin, v.Invariant
		}
	}
	return name
}

// findVerdict returns the named verdict (zero Verdict if absent).
func findVerdict(vs []Verdict, name string) Verdict {
	for _, v := range vs {
		if v.Invariant == name {
			return v
		}
	}
	return Verdict{}
}
