package adversary

import (
	"math"
	"reflect"
	"testing"

	"pccproteus/internal/pathmodel"
)

// modelScenario is testScenario over a LEO path model whose handover
// outage (at ≈19.8 s with a 20 s period) lands inside the run.
func modelScenario(proto string) Scenario {
	sc := testScenario(proto)
	sc.PathModel = &pathmodel.Spec{Kind: "leo", PeriodS: 20}
	return sc
}

// TestRunWithPathModel runs a target over a model-driven base path and
// checks the integration: the run is deterministic, the envelope
// functions track the model, the handover merged into the fault plan
// (progress must excuse the outage window), and throughput is alive on
// both sides of the blackout.
func TestRunWithPathModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	sc := modelScenario("proteus-p")
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	rc := Run(sc, Schedule{}, 1)
	for _, v := range CheckAll(rc) {
		if v.Violated() {
			t.Errorf("clean model run violates %s: %s", v.Invariant, v)
		}
	}
	if m := meanOver(rc.TargetMbps, 5, 18); m < 1 {
		t.Fatalf("pre-handover throughput %.3f Mbps, want alive", m)
	}
	if m := meanOver(rc.TargetMbps, 25, 40); m < 1 {
		t.Fatalf("post-handover throughput %.3f Mbps, want alive", m)
	}
	again := Run(sc, Schedule{}, 1)
	if !reflect.DeepEqual(rc.TargetMbps, again.TargetMbps) {
		t.Fatal("model run not deterministic at a fixed seed")
	}
}

// TestModelEnvelopeFunctions: RateAt/DelayAt must compose the model's
// base prescription with schedule perturbations, and the model outage
// must register with outageOverlaps.
func TestModelEnvelopeFunctions(t *testing.T) {
	sc := modelScenario("cubic").withModel()
	sch := Schedule{Segments: []Segment{
		{Kind: KindBWStep, At: 12, Dur: 5, Factor: 0.5},
	}}.Canonical(sc)

	for _, tt := range []float64{5, 13, 25} {
		base := sc.baseMbpsAt(tt)
		want := base
		if tt >= 12 && tt < 17 {
			want = base * 0.5
		}
		if got := sch.RateAt(sc, tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("RateAt(%g) = %g, want %g (base %g)", tt, got, want, base)
		}
		if d := sch.DelayAt(sc, tt); d < sc.RTT/2 {
			t.Errorf("DelayAt(%g) = %g below static base", tt, d)
		}
	}
	// The LEO outage covers the tail of the 20 s pass.
	if !sc.outageOverlaps(19, 21) {
		t.Error("handover outage not visible to outageOverlaps")
	}
	if sc.outageOverlaps(2, 10) {
		t.Error("phantom outage in a clean window")
	}
	if testScenario("cubic").outageOverlaps(0, 45) {
		t.Error("model-free scenario reports an outage")
	}
}

// TestValidateRejectsBadModel: a broken model spec must fail Validate,
// and the replay loader must therefore refuse such a counterexample.
func TestValidateRejectsBadModel(t *testing.T) {
	sc := testScenario("cubic")
	sc.PathModel = &pathmodel.Spec{Kind: "warp-drive"}
	if err := sc.Validate(); err == nil {
		t.Fatal("unknown model kind accepted")
	}
	sc.PathModel = &pathmodel.Spec{Kind: "trace"}
	if err := sc.Validate(); err == nil {
		t.Fatal("trace model without a path accepted")
	}
}
