package adversary

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestHuntDeterministic runs the same small hunt twice — including the
// shrinking phase — and demands identical logs, schedules, and
// verdicts. This is the package-level form of the CLI's byte-identical
// guarantee.
func TestHuntDeterministic(t *testing.T) {
	cfg := Config{Scenario: testScenario("proteus-s"), Budget: 8, Seed: 5, Jobs: 1}
	a, err := Hunt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 4 // worker count must not change the outcome
	b, err := Hunt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Log, b.Log) {
		t.Fatalf("logs differ:\n%v\n%v", a.Log, b.Log)
	}
	if !schedulesEqual(a.Best, b.Best) || a.BestFitness != b.BestFitness {
		t.Fatalf("best schedules differ: %v (%v) vs %v (%v)", a.Best, a.BestFitness, b.Best, b.BestFitness)
	}
	if (a.Counterexample == nil) != (b.Counterexample == nil) {
		t.Fatalf("one run found a counterexample, the other did not")
	}
	if a.Counterexample != nil && !reflect.DeepEqual(a.Counterexample, b.Counterexample) {
		t.Fatalf("counterexamples differ:\n%+v\n%+v", a.Counterexample, b.Counterexample)
	}
}

// TestShrinkPreservesViolation drives the shrinker on a hand-built
// violating schedule and checks the minimized result still violates the
// same invariant and is no larger than the input.
func TestShrinkPreservesViolation(t *testing.T) {
	sc := testScenario("cubic")
	ev := &evaluator{sc: sc, seed: 1, baseline: NewBaseline(sc, 1), jobs: 1}
	// A fat schedule: a real stall-inducing delay spike buried among
	// irrelevant segments.
	fat := Schedule{Segments: []Segment{
		{Kind: KindQueueResize, At: 10, Dur: 2, Factor: 2},
		{Kind: KindDelaySpike, At: 10, Dur: 5, Value: 0.3},
		{Kind: KindLossBurst, At: 13, Dur: 1, Value: 0.05},
	}}.Canonical(sc)
	full := ev.evalOne(fat)
	target := worstName(full.verdicts)
	if !findVerdict(full.verdicts, target).Violated() {
		t.Skipf("fat schedule does not violate on this scenario (fitness %v) — shrink test needs a violation", full.fitness)
	}
	small, used := Shrink(ev, fat, target, 60)
	if used > 60 {
		t.Fatalf("shrinker overspent: %d evals", used)
	}
	if len(small.Segments) > len(fat.Segments) {
		t.Fatalf("shrinker grew the schedule: %v", small)
	}
	if !findVerdict(ev.evalOne(small).verdicts, target).Violated() {
		t.Fatalf("minimized schedule no longer violates %s: %v", target, small)
	}
}

func TestMutateNeverAliasesInput(t *testing.T) {
	sc := testScenario("cubic")
	rng := rand.New(rand.NewSource(9))
	orig := RandomSchedule(rng, sc)
	snapshot := orig.clone()
	for i := 0; i < 100; i++ {
		Mutate(rng, sc, orig)
	}
	if !schedulesEqual(orig, snapshot) {
		t.Fatalf("Mutate modified its input: %v vs %v", orig, snapshot)
	}
}
