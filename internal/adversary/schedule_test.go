package adversary

import (
	"math"
	"math/rand"
	"testing"
)

// testScenario is a small hunting ground for unit tests: short enough
// that an evaluation is cheap, long enough that every window the
// invariants need still exists (maxSegEnd = 15 > warmup 10).
func testScenario(proto string) Scenario {
	return Scenario{
		Proto:    proto,
		LinkMbps: 40,
		RTT:      0.040,
		BufBytes: 300000,
		Duration: 45,
		Warmup:   10,
	}
}

func TestCanonicalClampsAndSorts(t *testing.T) {
	sc := testScenario("cubic")
	s := Schedule{Segments: []Segment{
		{Kind: KindLossBurst, At: 100, Dur: 50, Value: 3},     // past the end, loss over cap
		{Kind: KindBWStep, At: -5, Dur: 1e6, Factor: 9},       // before warmup, absurd factor
		{Kind: KindDelaySpike, At: 12, Dur: 2, Value: 0.0001}, // below min spike
		{Kind: KindBWStep, At: 11, Dur: 0.1, Factor: 0.5},     // below min duration
	}}
	c := s.Canonical(sc)
	maxEnd := sc.maxSegEnd()
	for i, g := range c.Segments {
		if g.At < sc.Warmup-1e-9 {
			t.Errorf("segment %d starts before warmup: %+v", i, g)
		}
		if g.end() > maxEnd+1e-9 {
			t.Errorf("segment %d ends after maxSegEnd %.3f: %+v", i, maxEnd, g)
		}
		if g.Dur < minSegDur-1e-9 {
			t.Errorf("segment %d shorter than minSegDur: %+v", i, g)
		}
		if i > 0 && c.Segments[i-1].At > g.At {
			t.Errorf("segments not sorted by At: %v", c.Segments)
		}
		if g.Kind == KindLossBurst && g.Value > capLossProb {
			t.Errorf("loss burst above cap: %+v", g)
		}
		if g.Kind == KindBWStep && (g.Factor < minBWFactor || g.Factor > maxBWFactor) {
			t.Errorf("bw factor outside bounds: %+v", g)
		}
	}
	// Canonical is idempotent.
	if !schedulesEqual(c, c.Canonical(sc)) {
		t.Fatalf("Canonical not idempotent: %v vs %v", c, c.Canonical(sc))
	}
}

func TestEnvFunctionsComposeAndFloor(t *testing.T) {
	sc := testScenario("cubic")
	s := Schedule{Segments: []Segment{
		{Kind: KindBWStep, At: 10, Dur: 5, Factor: 0.5},
		{Kind: KindBWStep, At: 12, Dur: 5, Factor: 0.1},
		{Kind: KindLossBurst, At: 11, Dur: 2, Value: 0.1},
		{Kind: KindLossBurst, At: 12, Dur: 2, Value: 0.3},
		{Kind: KindDelaySpike, At: 10, Dur: 3, Value: 0.1},
		{Kind: KindQueueResize, At: 10, Dur: 5, Factor: 0.001},
	}}.Canonical(sc)

	if got := s.RateAt(sc, 9); got != sc.LinkMbps {
		t.Fatalf("RateAt before any segment = %v", got)
	}
	// Overlapping bw steps multiply, flooring at floorLinkMbps.
	want := math.Max(sc.LinkMbps*0.5*0.1, floorLinkMbps)
	if got := s.RateAt(sc, 13); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RateAt(13) = %v, want %v", got, want)
	}
	// Overlapping loss bursts take the max, not the sum.
	if got := s.LossAt(12.5); got != 0.3 {
		t.Fatalf("LossAt(12.5) = %v, want 0.3", got)
	}
	if got := s.LossAt(9); got != 0 {
		t.Fatalf("LossAt(9) = %v, want 0", got)
	}
	// Delay adds on top of base one-way propagation.
	if got := s.DelayAt(sc, 11); math.Abs(got-(sc.RTT/2+0.1)) > 1e-9 {
		t.Fatalf("DelayAt(11) = %v", got)
	}
	// Queue floor holds.
	if got := s.QueueCapAt(sc, 12); got < floorQueueBytes {
		t.Fatalf("QueueCapAt(12) = %d below floor", got)
	}
}

func TestRandomAndMutatedSchedulesStayLegal(t *testing.T) {
	sc := testScenario("proteus-s")
	rng := rand.New(rand.NewSource(42))
	s := RandomSchedule(rng, sc)
	for iter := 0; iter < 500; iter++ {
		s = Mutate(rng, sc, s)
		if len(s.Segments) == 0 || len(s.Segments) > 5 {
			t.Fatalf("iter %d: %d segments", iter, len(s.Segments))
		}
		for _, g := range s.Segments {
			if g.At < sc.Warmup-1e-9 || g.end() > sc.maxSegEnd()+1e-9 {
				t.Fatalf("iter %d: segment outside window: %+v", iter, g)
			}
			if g.Kind == KindFlow && g.Proto == "" {
				t.Fatalf("iter %d: flow segment without proto", iter)
			}
			if round3(g.At) != g.At || round3(g.Dur) != g.Dur {
				t.Fatalf("iter %d: unquantized segment: %+v", iter, g)
			}
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	sc := testScenario("proteus-s")
	s := Schedule{Segments: []Segment{
		{Kind: KindBWStep, At: 11, Dur: 4, Factor: 0.3},
		{Kind: KindFlow, At: 10, Dur: 30, Proto: "cubic"},
	}}
	a := Run(sc, s, 7)
	b := Run(sc, s, 7)
	if len(a.TargetMbps) != len(b.TargetMbps) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(a.TargetMbps), len(b.TargetMbps))
	}
	for i := range a.TargetMbps {
		if a.TargetMbps[i] != b.TargetMbps[i] || a.PacingMbps[i] != b.PacingMbps[i] {
			t.Fatalf("second %d differs between identical runs", i)
		}
	}
	if a.Acked != b.Acked || a.LinkStats != b.LinkStats {
		t.Fatalf("aggregate state differs: %+v vs %+v", a.LinkStats, b.LinkStats)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	// The competing flow must actually have moved traffic while alive.
	// Canonical clamps the flow segment to end by maxSegEnd (t=15 in
	// this scenario), and the overlapping bw step throttles it hard, so
	// just demand a real peak rather than a sustained mean.
	peak := 0.0
	for _, v := range a.CompMbps {
		peak = math.Max(peak, v)
	}
	if peak < 1 {
		t.Fatalf("competitor barely ran: %v", a.CompMbps)
	}
}

func TestPerturbationActuallyPerturbs(t *testing.T) {
	sc := testScenario("cubic")
	clean := Run(sc, Schedule{}, 3)
	cut := Run(sc, Schedule{Segments: []Segment{
		{Kind: KindBWStep, At: 10, Dur: 5, Factor: 0.1},
	}}, 3)
	cleanT := meanOver(clean.TargetMbps, 10, 15)
	cutT := meanOver(cut.TargetMbps, 10, 15)
	if cutT > cleanT*0.5 {
		t.Fatalf("90%% bandwidth cut barely moved throughput: clean %.2f vs cut %.2f", cleanT, cutT)
	}
	// And after the cut, capacity is restored: the same pure function
	// the checkers use says so.
	if got := cut.Schedule.RateAt(sc, 20); got != sc.LinkMbps {
		t.Fatalf("RateAt after segment = %v", got)
	}
}

func TestCheckersCleanRunHolds(t *testing.T) {
	for _, proto := range []string{"cubic", "proteus-s", "proteus-p", "proteus-h"} {
		sc := testScenario(proto)
		rc := Run(sc, Schedule{}, 1)
		rc.Baseline = NewBaseline(sc, 1)
		for _, v := range CheckAll(rc) {
			if v.Violated() {
				t.Errorf("%s: clean run violates %s", proto, v)
			}
		}
	}
}

func TestFiniteCheckerCatchesPoison(t *testing.T) {
	sc := testScenario("cubic")
	rc := Run(sc, Schedule{}, 1)
	rc.PacingMbps[5] = math.NaN()
	if v := (finiteChecker{}).Check(rc); !v.Violated() {
		t.Fatalf("NaN pacing not flagged: %s", v)
	}
	rc2 := Run(sc, Schedule{}, 1)
	rc2.CWnd[3] = -1
	if v := (finiteChecker{}).Check(rc2); !v.Violated() {
		t.Fatalf("negative cwnd not flagged: %s", v)
	}
	rc3 := Run(sc, Schedule{}, 1)
	if v := (finiteChecker{}).Check(rc3); v.Violated() {
		t.Fatalf("clean run flagged: %s", v)
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	if err := (Scenario{Proto: "no-such-cc", LinkMbps: 40, RTT: 0.04, BufBytes: 1000, Duration: 90, Warmup: 20}).Validate(); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := (Scenario{Proto: "cubic", LinkMbps: 40, RTT: 0.04, BufBytes: 1000, Duration: 35, Warmup: 20}).Validate(); err == nil {
		t.Fatal("no-room-for-segments scenario accepted")
	}
	if err := DefaultScenario("cubic", true).Validate(); err != nil {
		t.Fatalf("default fast scenario rejected: %v", err)
	}
}
