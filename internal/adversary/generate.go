package adversary

import "math/rand"

// RandomSchedule draws a fresh attack schedule of 1–4 segments. All
// randomness comes from rng, which the hunt seeds deterministically.
func RandomSchedule(rng *rand.Rand, sc Scenario) Schedule {
	n := 1 + rng.Intn(4)
	s := Schedule{Segments: make([]Segment, 0, n)}
	for i := 0; i < n; i++ {
		s.Segments = append(s.Segments, randomSegment(rng, sc))
	}
	return s.Canonical(sc)
}

func randomSegment(rng *rand.Rand, sc Scenario) Segment {
	span := sc.maxSegEnd() - sc.Warmup
	g := Segment{
		Kind: segmentKinds[rng.Intn(len(segmentKinds))],
		At:   sc.Warmup + rng.Float64()*span,
	}
	switch g.Kind {
	case KindBWStep:
		g.Dur = uniform(rng, minSegDur, maxSegDur)
		g.Factor = uniform(rng, minBWFactor, maxBWFactor)
	case KindBWOsc:
		g.Dur = uniform(rng, minSegDur, maxSegDur)
		g.Factor = uniform(rng, minBWFactor, 1)
		g.Value = uniform(rng, minOscPeriod, maxOscPeriod)
	case KindDelaySpike:
		g.Dur = uniform(rng, minSegDur, maxSegDur)
		g.Value = uniform(rng, minDelaySpike, maxDelaySpike)
	case KindLossBurst:
		g.Dur = uniform(rng, minSegDur, maxSegDur)
		g.Value = uniform(rng, minLossBurst, maxLossBurst)
	case KindQueueResize:
		g.Dur = uniform(rng, minSegDur, maxSegDur)
		g.Factor = uniform(rng, minQueueFactor, maxQueueFactor)
	case KindFlow:
		g.Dur = uniform(rng, minFlowDur, maxFlowDur)
		g.Proto = CompetitorProtos[rng.Intn(len(CompetitorProtos))]
	case KindBlackout, KindAckBlackout:
		g.Dur = uniform(rng, minSegDur, maxBlackoutDur)
	case KindCorrupt, KindDuplicate:
		g.Dur = uniform(rng, minSegDur, maxSegDur)
		g.Value = uniform(rng, minFaultProb, maxFaultProb)
	}
	return g
}

func uniform(rng *rand.Rand, lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

// Mutate derives a neighbor of s: add a segment, drop one, or perturb
// one segment's timing or magnitude. The result is canonicalized, so
// mutation can never leave the legal envelope.
func Mutate(rng *rand.Rand, sc Scenario, s Schedule) Schedule {
	out := s.clone()
	switch {
	case len(out.Segments) == 0 || (len(out.Segments) < 5 && rng.Float64() < 0.25):
		out.Segments = append(out.Segments, randomSegment(rng, sc))
	case len(out.Segments) > 1 && rng.Float64() < 0.15:
		i := rng.Intn(len(out.Segments))
		out.Segments = append(out.Segments[:i], out.Segments[i+1:]...)
	default:
		i := rng.Intn(len(out.Segments))
		out.Segments[i] = perturbSegment(rng, out.Segments[i])
	}
	return out.Canonical(sc)
}

// perturbSegment jitters one field of a segment: its start, duration,
// or magnitude (lognormal multiplicative steps, gaussian time shifts).
func perturbSegment(rng *rand.Rand, g Segment) Segment {
	switch rng.Intn(4) {
	case 0:
		g.At += rng.NormFloat64() * 5
	case 1:
		g.Dur *= logStep(rng, 0.4)
	case 2:
		if g.Kind == KindFlow {
			g.Proto = CompetitorProtos[rng.Intn(len(CompetitorProtos))]
		} else if g.Factor != 0 {
			g.Factor *= logStep(rng, 0.3)
		} else {
			g.Value *= logStep(rng, 0.3)
		}
	default:
		if g.Value != 0 {
			g.Value *= logStep(rng, 0.3)
		} else if g.Factor != 0 {
			g.Factor *= logStep(rng, 0.3)
		} else {
			g.At += rng.NormFloat64() * 5
		}
	}
	return g
}

// logStep draws a multiplicative step e^{N(0,σ²)}.
func logStep(rng *rand.Rand, sigma float64) float64 {
	x := rng.NormFloat64() * sigma
	// Avoid math.Exp just for a jitter: 2nd-order expansion is plenty
	// and keeps the step bounded for extreme draws.
	if x > 1.5 {
		x = 1.5
	}
	if x < -1.5 {
		x = -1.5
	}
	return 1 + x + x*x/2
}
