// Package adversary is the guided adversarial stress-testing subsystem:
// it hunts for network schedules — composed sequences of bandwidth steps
// and oscillations, delay spikes, loss bursts, queue resizes,
// competing-flow churn, and chaos-model faults (blackouts, ack-path
// blackouts, corruption, duplication) — under which a congestion
// controller violates a behavioral invariant (rate boundedness, forward
// progress, scavenger yielding, post-perturbation recovery, numeric
// sanity).
//
// The pieces fit together as a property-based fuzzer for transport
// behavior, in the spirit of CC-Fuzz: a seeded schedule generator
// (schedule.go, generate.go) drives perturbations through sim/netem; a
// library of invariant checkers (invariant.go) evaluates each run from
// its flight-recorder event stream and sampled timelines; a guided
// search loop (search.go) mutates schedules toward the minimum invariant
// margin; and a shrinker (shrink.go) reduces any failing schedule to a
// short reproducing form that serializes as a JSON counterexample
// (replay.go) for regression replay.
//
// Everything is deterministic: a hunt is fully reproduced by its seed,
// regardless of how many worker goroutines evaluate candidates.
package adversary

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pccproteus/internal/chaos"
	"pccproteus/internal/netem"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/sim"
)

// Segment kinds. Each names one parameterized perturbation of the
// emulated path or workload.
const (
	// KindBWStep multiplies the link rate by Factor for Dur seconds.
	KindBWStep = "bw-step"
	// KindBWOsc oscillates the link rate between base and base·Factor
	// with half-period Value for Dur seconds (square wave, perturbed
	// phase first).
	KindBWOsc = "bw-osc"
	// KindDelaySpike adds Value seconds of one-way propagation delay
	// for Dur seconds.
	KindDelaySpike = "delay-spike"
	// KindLossBurst sets the link's random loss probability to Value
	// for Dur seconds.
	KindLossBurst = "loss-burst"
	// KindQueueResize multiplies the bottleneck buffer by Factor for
	// Dur seconds.
	KindQueueResize = "queue-resize"
	// KindFlow runs a competing flow of protocol Proto from At for Dur
	// seconds.
	KindFlow = "flow"

	// Fault segments: these name chaos-model faults (internal/chaos)
	// rather than link-parameter perturbations, and are applied through
	// chaos.ApplySim so the identical plan can replay on the wire shim.
	// Their kind strings equal the chaos.Kind strings so a schedule's
	// fault subset converts to a chaos.Plan by name.

	// KindBlackout destroys every data packet (and, implied, every ack)
	// for Dur seconds.
	KindBlackout = string(chaos.KindBlackout)
	// KindAckBlackout destroys only the ack path for Dur seconds.
	KindAckBlackout = string(chaos.KindAckBlackout)
	// KindCorrupt damages each delivered data packet with probability
	// Value for Dur seconds.
	KindCorrupt = string(chaos.KindCorrupt)
	// KindDuplicate delivers an extra copy of each data packet with
	// probability Value for Dur seconds.
	KindDuplicate = string(chaos.KindDuplicate)
)

// segmentKinds lists every kind in generation order.
var segmentKinds = []string{KindBWStep, KindBWOsc, KindDelaySpike, KindLossBurst, KindQueueResize, KindFlow,
	KindBlackout, KindAckBlackout, KindCorrupt, KindDuplicate}

// isFaultKind reports whether the kind is a chaos-model fault (applied
// via chaos.ApplySim) rather than a link-parameter perturbation.
func isFaultKind(kind string) bool {
	switch kind {
	case KindBlackout, KindAckBlackout, KindCorrupt, KindDuplicate:
		return true
	}
	return false
}

// Parameter bounds. Schedules are clamped into these before every run so
// that mutation and shrinking can never drive the emulation outside the
// regime the invariants are calibrated for.
const (
	minSegDur  = 0.5  // seconds, environment segments
	maxSegDur  = 25.0 // seconds, environment segments
	minFlowDur = 10.0 // seconds, competing flows
	maxFlowDur = 40.0

	minBWFactor    = 0.05 // deepest bandwidth cut: 5% of base
	maxBWFactor    = 2.0  // largest bandwidth boost
	minOscPeriod   = 0.2  // seconds, half-period of a bw oscillation
	maxOscPeriod   = 10.0
	minDelaySpike  = 0.005 // seconds of extra one-way delay
	maxDelaySpike  = 0.3
	minLossBurst   = 0.02 // random-loss probability during a burst
	maxLossBurst   = 0.4
	minQueueFactor = 0.1
	maxQueueFactor = 4.0

	// Fault-segment bounds: blackouts are kept short enough that the
	// recovery invariant still has a run to judge, and corruption /
	// duplication probabilities stay well inside the chaos model's own
	// clamp (chaos.MaxFaultProb).
	maxBlackoutDur = 4.0
	minFaultProb   = 0.01
	maxFaultProb   = 0.3

	// Absolute floors the emulation never goes below, whatever the
	// composition of active segments.
	floorLinkMbps   = 0.5
	floorQueueBytes = 2 * netem.MTU
	capLossProb     = 0.5
	capExtraDelay   = 0.5
)

// Segment is one perturbation. At and Dur are seconds of virtual time;
// Factor is a multiplier on a base quantity (bandwidth, buffer) and
// Value an absolute quantity (delay seconds, loss probability, or the
// oscillation half-period). Proto names the protocol of a competing
// flow and is empty for environment segments.
type Segment struct {
	Kind   string  `json:"kind"`
	At     float64 `json:"at"`
	Dur    float64 `json:"dur"`
	Factor float64 `json:"factor,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Proto  string  `json:"proto,omitempty"`
}

// activeAt reports whether the segment covers time t (half-open
// [At, At+Dur)).
func (g Segment) activeAt(t float64) bool { return t >= g.At && t < g.At+g.Dur }

// end returns the segment's end time.
func (g Segment) end() float64 { return g.At + g.Dur }

// String renders the segment compactly for hunt logs.
func (g Segment) String() string {
	switch g.Kind {
	case KindBWStep:
		return fmt.Sprintf("bw-step[%.2f,%.2f)x%.3f", g.At, g.end(), g.Factor)
	case KindBWOsc:
		return fmt.Sprintf("bw-osc[%.2f,%.2f)x%.3f/%.2fs", g.At, g.end(), g.Factor, g.Value)
	case KindDelaySpike:
		return fmt.Sprintf("delay-spike[%.2f,%.2f)+%.3fs", g.At, g.end(), g.Value)
	case KindLossBurst:
		return fmt.Sprintf("loss-burst[%.2f,%.2f)p=%.3f", g.At, g.end(), g.Value)
	case KindQueueResize:
		return fmt.Sprintf("queue-resize[%.2f,%.2f)x%.3f", g.At, g.end(), g.Factor)
	case KindFlow:
		return fmt.Sprintf("flow[%.2f,%.2f)%s", g.At, g.end(), g.Proto)
	case KindBlackout, KindAckBlackout:
		return fmt.Sprintf("%s[%.2f,%.2f)", g.Kind, g.At, g.end())
	case KindCorrupt, KindDuplicate:
		return fmt.Sprintf("%s[%.2f,%.2f)p=%.3f", g.Kind, g.At, g.end(), g.Value)
	}
	return "segment(" + g.Kind + ")"
}

// Schedule is a deterministic attack schedule: the list of perturbation
// segments applied to one run.
type Schedule struct {
	Segments []Segment `json:"segments"`
}

// String joins the segments for hunt logs.
func (s Schedule) String() string {
	if len(s.Segments) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(s.Segments))
	for i, g := range s.Segments {
		parts[i] = g.String()
	}
	return strings.Join(parts, " ")
}

// clone returns a deep copy.
func (s Schedule) clone() Schedule {
	return Schedule{Segments: append([]Segment(nil), s.Segments...)}
}

// round3 quantizes to 0.001 so schedules serialize to stable, short
// JSON and independently derived schedules compare bytewise.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// Canonical clamps every segment into the scenario's legal envelope,
// quantizes parameters, and sorts segments by start time (ties broken
// on kind, then parameters) so that equivalent schedules have equal
// serialized forms and competitor flow IDs are assigned stably.
func (s Schedule) Canonical(sc Scenario) Schedule {
	out := Schedule{Segments: make([]Segment, 0, len(s.Segments))}
	for _, g := range s.Segments {
		if cg, ok := clampSegment(sc, g); ok {
			out.Segments = append(out.Segments, cg)
		}
	}
	sort.SliceStable(out.Segments, func(i, j int) bool {
		a, b := out.Segments[i], out.Segments[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		if a.Factor != b.Factor {
			return a.Factor < b.Factor
		}
		return a.Value < b.Value
	})
	return out
}

// clampSegment forces g into the legal parameter envelope for sc. It
// reports false for segments of unknown kind, which are dropped.
func clampSegment(sc Scenario, g Segment) (Segment, bool) {
	minDur, maxDur := minSegDur, maxSegDur
	if g.Kind == KindFlow {
		minDur, maxDur = minFlowDur, maxFlowDur
	}
	lastStart := sc.maxSegEnd() - minDur
	g.At = clamp(g.At, sc.Warmup, lastStart)
	g.Dur = clamp(g.Dur, minDur, maxDur)
	if g.end() > sc.maxSegEnd() {
		g.Dur = sc.maxSegEnd() - g.At
	}
	switch g.Kind {
	case KindBWStep:
		g.Factor = clamp(g.Factor, minBWFactor, maxBWFactor)
		g.Value, g.Proto = 0, ""
	case KindBWOsc:
		g.Factor = clamp(g.Factor, minBWFactor, 1)
		g.Value = clamp(g.Value, minOscPeriod, maxOscPeriod)
		g.Proto = ""
	case KindDelaySpike:
		g.Value = clamp(g.Value, minDelaySpike, maxDelaySpike)
		g.Factor, g.Proto = 0, ""
	case KindLossBurst:
		g.Value = clamp(g.Value, minLossBurst, maxLossBurst)
		g.Factor, g.Proto = 0, ""
	case KindQueueResize:
		g.Factor = clamp(g.Factor, minQueueFactor, maxQueueFactor)
		g.Value, g.Proto = 0, ""
	case KindFlow:
		if g.Proto == "" {
			g.Proto = CompetitorProtos[0]
		}
		g.Factor, g.Value = 0, 0
	case KindBlackout, KindAckBlackout:
		g.Dur = clamp(g.Dur, minSegDur, maxBlackoutDur)
		g.Factor, g.Value, g.Proto = 0, 0, ""
	case KindCorrupt, KindDuplicate:
		g.Value = clamp(g.Value, minFaultProb, maxFaultProb)
		g.Factor, g.Proto = 0, ""
	default:
		return g, false
	}
	g.At, g.Dur = round3(g.At), round3(g.Dur)
	g.Factor, g.Value = round3(g.Factor), round3(g.Value)
	return g, true
}

func clamp(x, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// --- pure environment functions -------------------------------------
//
// The emulation applies the schedule by sampling these closed-form
// functions at every change boundary, so the invariant checkers (which
// call the same functions) see exactly the capacity/loss/delay the run
// experienced — by construction, not by bookkeeping.

// RateAt returns the link capacity in Mbps at time t: the base rate
// (static, or the path model's prescription at t) multiplied by every
// active bandwidth segment's factor.
func (s Schedule) RateAt(sc Scenario, t float64) float64 {
	r := sc.baseMbpsAt(t)
	for _, g := range s.Segments {
		if !g.activeAt(t) {
			continue
		}
		switch g.Kind {
		case KindBWStep:
			r *= g.Factor
		case KindBWOsc:
			if int(math.Floor((t-g.At)/g.Value))%2 == 0 {
				r *= g.Factor
			}
		}
	}
	if r < floorLinkMbps {
		r = floorLinkMbps
	}
	return r
}

// LossAt returns the link's random loss probability at time t (the
// maximum over active loss bursts).
func (s Schedule) LossAt(t float64) float64 {
	p := 0.0
	for _, g := range s.Segments {
		if g.Kind == KindLossBurst && g.activeAt(t) && g.Value > p {
			p = g.Value
		}
	}
	if p > capLossProb {
		p = capLossProb
	}
	return p
}

// DelayAt returns the one-way propagation delay at time t: the base
// (including any path-model extra delay) plus every active delay
// spike.
func (s Schedule) DelayAt(sc Scenario, t float64) float64 {
	d := sc.baseDelayAt(t)
	extra := 0.0
	for _, g := range s.Segments {
		if g.Kind == KindDelaySpike && g.activeAt(t) {
			extra += g.Value
		}
	}
	if extra > capExtraDelay {
		extra = capExtraDelay
	}
	return d + extra
}

// QueueCapAt returns the bottleneck buffer in bytes at time t.
func (s Schedule) QueueCapAt(sc Scenario, t float64) int {
	f := 1.0
	for _, g := range s.Segments {
		if g.Kind == KindQueueResize && g.activeAt(t) {
			f *= g.Factor
		}
	}
	b := int(float64(sc.BufBytes) * f)
	if b < floorQueueBytes {
		b = floorQueueBytes
	}
	return b
}

// FaultPlan extracts the schedule's fault segments as a canonical
// chaos plan, and reports whether there were any. The plan replays
// identically through chaos.ApplySim (simulator) and the wire shim's
// chaos executor, which is what lets a fault counterexample be
// re-verified in both worlds.
func (s Schedule) FaultPlan() (chaos.Plan, bool) {
	var p chaos.Plan
	for _, g := range s.Segments {
		if !isFaultKind(g.Kind) {
			continue
		}
		p.Faults = append(p.Faults, chaos.Fault{
			Kind:  chaos.Kind(g.Kind),
			At:    g.At,
			Dur:   g.Dur,
			Value: g.Value,
		})
	}
	return p.Canonical(), len(p.Faults) > 0
}

// blackoutSettle is the grace the progress invariant grants after a
// blackout ends: the sender's watchdog must notice the path healed
// (probe cadence) and the RTO ladder unwind before throughput counts
// again.
const blackoutSettle = 3.0

// blackoutOverlaps reports whether a blackout or ack-path blackout —
// including its post-heal settling time — overlaps the window [a, b).
// Stalling while the path is destroyed is survival, not a bug.
func (s Schedule) blackoutOverlaps(a, b float64) bool {
	for _, g := range s.Segments {
		if g.Kind != KindBlackout && g.Kind != KindAckBlackout {
			continue
		}
		if g.At < b && g.end()+blackoutSettle > a {
			return true
		}
	}
	return false
}

// quietAfter returns the time after which no segment is active (the
// recovery invariant measures from here), floored at the warmup.
func (s Schedule) quietAfter(sc Scenario) float64 {
	q := sc.Warmup
	for _, g := range s.Segments {
		if g.end() > q {
			q = g.end()
		}
	}
	return q
}

// envOverlaps reports whether any environment (non-flow) segment
// overlaps the window [a, b).
func (s Schedule) envOverlaps(a, b float64) bool {
	for _, g := range s.Segments {
		if g.Kind == KindFlow {
			continue
		}
		if g.At < b && g.end() > a {
			return true
		}
	}
	return false
}

// apply schedules the perturbations on a live simulation: one event per
// environment change boundary (each event re-derives the full link
// state from the pure functions above), plus start/stop events for
// competing flows. spawnFlow is called at a flow segment's start with
// the segment's index among flow segments; it returns a stop function
// invoked at the segment's end.
func (s Schedule) apply(sm *sim.Sim, sc Scenario, link *netem.Link, spawnFlow func(i int, g Segment) func()) {
	boundaries := map[float64]struct{}{}
	addB := func(t float64) {
		if t > 0 && t <= sc.Duration {
			boundaries[t] = struct{}{}
		}
	}
	// A path model makes the base itself time-varying: every model step
	// is a change boundary, whether or not a segment is active there.
	if sc.model != nil {
		for _, st := range pathmodel.Steps(sc.model, sc.Duration) {
			addB(st.At)
		}
	}
	flowIdx := 0
	for _, g := range s.Segments {
		if isFaultKind(g.Kind) {
			continue // applied separately via chaos.ApplySim
		}
		if g.Kind == KindFlow {
			i := flowIdx
			seg := g
			flowIdx++
			sm.At(g.At, func() {
				stop := spawnFlow(i, seg)
				sm.At(seg.end(), stop)
			})
			continue
		}
		addB(g.At)
		addB(g.end())
		if g.Kind == KindBWOsc {
			for t := g.At + g.Value; t < g.end(); t += g.Value {
				addB(t)
			}
		}
	}
	times := make([]float64, 0, len(boundaries))
	for t := range boundaries {
		times = append(times, t)
	}
	sort.Float64s(times)
	for _, t := range times {
		t := t
		sm.At(t, func() {
			link.Rate = s.RateAt(sc, t) * 1e6 / 8
			link.LossProb = s.LossAt(t)
			link.PropDelay = s.DelayAt(sc, t)
			link.QueueCap = s.QueueCapAt(sc, t)
		})
	}
}
