package adversary

import (
	"fmt"
	"math"

	"pccproteus/internal/chaos"
	"pccproteus/internal/core"
	"pccproteus/internal/exp"
	"pccproteus/internal/netem"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/sim"
	"pccproteus/internal/trace"
	"pccproteus/internal/transport"
)

// CompetitorProtos is the set of protocols a KindFlow segment may run
// against the target. They are the paper's primary protocols — the
// traffic a scavenger must yield to and a primary must share with.
var CompetitorProtos = []string{"cubic", "bbr", "proteus-p", "vivace", "copa"}

// Scenario fixes the base topology a hunt perturbs: one target flow of
// Proto on a single bottleneck. Schedules may only perturb the path
// after Warmup (the controller's start-up is not the behavior under
// test) and must go quiet early enough that the recovery invariant has
// a measurement window before Duration.
type Scenario struct {
	Proto    string  `json:"proto"`
	LinkMbps float64 `json:"link_mbps"`
	RTT      float64 `json:"rtt"`
	BufBytes int     `json:"buf_bytes"`
	Duration float64 `json:"duration"`
	Warmup   float64 `json:"warmup"`

	// PathModel, when set, makes the base path itself time-varying: the
	// model's capacity/delay schedule underlies every perturbation (a
	// bw-step multiplies the model's capacity at that instant, and the
	// invariant envelope functions track the same arithmetic), and the
	// model's outage windows merge into the run's chaos fault plan. A
	// zero model seed pins seed 1 so counterexamples replay bit-exactly
	// regardless of the hunt seed. Model-free scenarios are bit-identical
	// to runs from before this field existed.
	PathModel *pathmodel.Spec `json:"path_model,omitempty"`

	// model is the built PathModel, cached by withModel so hunts don't
	// rebuild (or re-read a trace file) on every envelope sample.
	model pathmodel.Model
}

// withModelErr returns sc with its path model built, validated, and
// cached; a nil PathModel or an already-built model is a no-op.
func (sc Scenario) withModelErr() (Scenario, error) {
	if sc.PathModel == nil || sc.model != nil {
		return sc, nil
	}
	ps := *sc.PathModel
	if ps.Seed == 0 {
		ps.Seed = 1 // replay determinism: never derive from the hunt seed
	}
	m, err := ps.Build(sc.Duration)
	if err != nil {
		return sc, err
	}
	if err := pathmodel.Validate(m, sc.Duration); err != nil {
		return sc, err
	}
	sc.model = m
	return sc, nil
}

// withModel is withModelErr for contexts past the Validate boundary,
// where a build failure is a programming error.
func (sc Scenario) withModel() Scenario {
	out, err := sc.withModelErr()
	if err != nil {
		panic(err)
	}
	return out
}

// baseMbpsAt returns the unperturbed path capacity at t: the static
// link rate, or the path model's (floor-clamped) prescription.
func (sc Scenario) baseMbpsAt(t float64) float64 {
	if sc.model == nil {
		return sc.LinkMbps
	}
	return pathmodel.ClampMbps(sc.model.StateAt(t).Mbps)
}

// baseDelayAt returns the unperturbed one-way delay at t: the static
// half-RTT plus whatever extra delay the path model prescribes.
func (sc Scenario) baseDelayAt(t float64) float64 {
	d := sc.RTT / 2
	if sc.model != nil {
		d += sc.model.StateAt(t).ExtraDelay
	}
	return d
}

// outageOverlaps reports whether a path-model outage window — plus the
// same post-heal settling grace blackout segments get — overlaps
// [a, b). Model-free scenarios never overlap.
func (sc Scenario) outageOverlaps(a, b float64) bool {
	if sc.model == nil {
		return false
	}
	plan, ok := pathmodel.FaultPlan(sc.model, sc.Duration)
	if !ok {
		return false
	}
	for _, f := range plan.Faults {
		if f.At < b && f.At+f.Dur+blackoutSettle > a {
			return true
		}
	}
	return false
}

// DefaultScenario returns the standard hunting ground for proto: a
// 40 Mbps / 40 ms / 1.5·BDP bottleneck, 90 virtual seconds with a 20 s
// warmup. fast halves the run for smoke tests.
func DefaultScenario(proto string, fast bool) Scenario {
	sc := Scenario{
		Proto:    proto,
		LinkMbps: 40,
		RTT:      0.040,
		BufBytes: 300000, // 1.5 BDP
		Duration: 90,
		Warmup:   20,
	}
	if fast {
		sc.Duration = 60
		sc.Warmup = 15
	}
	return sc
}

// maxSegEnd is the latest time any segment may still be active: the
// recovery invariant needs RecoveryT of settling plus a measurement
// window before the end of the run.
func (sc Scenario) maxSegEnd() float64 { return sc.Duration - RecoveryT - recoveryWindow }

func (sc Scenario) String() string {
	s := fmt.Sprintf("%s on %.0fMbps/%.0fms/%dKB, %.0fs (warmup %.0fs)",
		sc.Proto, sc.LinkMbps, sc.RTT*1000, sc.BufBytes/1000, sc.Duration, sc.Warmup)
	if sc.PathModel != nil {
		s += " over " + sc.PathModel.Kind + " path model"
	}
	return s
}

// Validate checks the scenario is runnable (known protocol, sane
// timing) before a hunt burns budget on it.
func (sc Scenario) Validate() error {
	if sc.maxSegEnd() <= sc.Warmup+minSegDur {
		return fmt.Errorf("adversary: duration %.0fs leaves no room for perturbations (warmup %.0fs + recovery %.0fs)",
			sc.Duration, sc.Warmup, RecoveryT+recoveryWindow)
	}
	if sc.LinkMbps <= 0 || sc.RTT <= 0 || sc.BufBytes <= 0 {
		return fmt.Errorf("adversary: scenario needs positive link parameters")
	}
	if _, err := sc.withModelErr(); err != nil {
		return err
	}
	return probeProto(sc.Proto)
}

// probeProto verifies proto is constructible, converting the harness's
// fail-loud panic into an error a CLI can print.
func probeProto(proto string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("adversary: %v", r)
		}
	}()
	s := sim.New(1)
	exp.NewController(s, proto)
	return nil
}

// RunContext is everything the invariant checkers see about one run:
// the scenario and schedule that produced it, per-second timelines of
// the target and its competitors, the target's flight-recorder event
// stream, and link-level counters.
type RunContext struct {
	Scenario Scenario
	Schedule Schedule
	Seed     int64

	// Per-second samples; index i covers virtual time [i, i+1).
	TargetMbps []float64 // target's acked throughput
	CompMbps   []float64 // all competitors' combined acked throughput
	PacingMbps []float64 // target CC's explicit pacing rate (0 = window-based)
	CWnd       []float64 // target CC's congestion window, bytes

	Events    []trace.Event // target flow's decision events
	Acked     int64
	LinkStats netem.LinkStats

	// HybridThreshold is the Proteus-H switching threshold the runner
	// configured (0 for every other controller).
	HybridThreshold float64

	// Baseline timelines from the unperturbed run of the same scenario
	// and seed; set by the evaluator, nil in a bare Run.
	Baseline *Baseline
}

// Baseline holds the clean (empty-schedule) run of a scenario, against
// which the recovery invariant compares.
type Baseline struct {
	TargetMbps []float64
}

// NewBaseline runs the scenario with no perturbations.
func NewBaseline(sc Scenario, seed int64) *Baseline {
	rc := Run(sc, Schedule{}, seed)
	return &Baseline{TargetMbps: rc.TargetMbps}
}

// hybridThresholdFor returns the Proteus-H switching threshold used in
// hunts: a quarter of the base capacity, the "keep at least this much"
// application demand of §4.3.
func hybridThresholdFor(sc Scenario) float64 { return sc.LinkMbps / 4 }

// adversaryMask captures only decision-level events: per-packet kinds
// are sampled separately by the per-second probes, and dropping them
// keeps a 200-candidate hunt's allocation footprint flat.
var adversaryMask = trace.MaskOf(trace.KindMIDecision, trace.KindRateChange,
	trace.KindUtilitySample, trace.KindModeSwitch)

// Run executes one scenario under one schedule. It is a pure function
// of (sc, schedule, seed): every call reproduces the identical
// RunContext, which is what makes hunts parallelizable and
// counterexamples replayable.
func Run(sc Scenario, schedule Schedule, seed int64) *RunContext {
	sc = sc.withModel()
	schedule = schedule.Canonical(sc)
	s := sim.New(seed)
	rec := trace.NewRecorder(trace.Options{Mask: adversaryMask, FlowCap: 1 << 16})
	s.SetTrace(rec)

	link := netem.NewLink(s, sc.LinkMbps, sc.BufBytes, sc.RTT/2)
	path := &netem.Path{Link: link, AckDelay: sc.RTT / 2}
	if sc.model != nil {
		// The model prescribes the path from t=0; the schedule's apply
		// boundaries (which include every model step) keep it current.
		link.SetRateMbps(schedule.RateAt(sc, 0))
		if err := link.SetPropDelay(schedule.DelayAt(sc, 0)); err != nil {
			panic(err)
		}
	}

	var hybridTau float64
	var cc transport.Controller
	if sc.Proto == exp.ProtoProteusH {
		c, h := core.NewProteusH(s.Rand())
		hybridTau = hybridThresholdFor(sc)
		h.SetThreshold(hybridTau)
		cc = c
	} else {
		cc = exp.NewController(s, sc.Proto)
	}
	// Fault segments replay through the chaos model, and only then do
	// the senders run with the survival machinery armed: fault-free
	// schedules stay bit-identical to runs from before the chaos
	// subsystem existed, which keeps the golden counterexamples valid.
	// A path model's outage windows join the plan the same way, so a
	// handover micro-blackout arms survival exactly like an adversarial
	// blackout segment.
	faultPlan, hasFaults := schedule.FaultPlan()
	if sc.model != nil {
		if mp, ok := pathmodel.FaultPlan(sc.model, sc.Duration); ok {
			faultPlan = pathmodel.MergePlans(faultPlan, mp)
			hasFaults = true
		}
	}

	target := transport.NewSender(1, path, cc)
	target.Burst = exp.BurstFor(sc.Proto)
	target.Survival = hasFaults
	target.Start()

	var competitors []*transport.Sender
	schedule.apply(s, sc, link, func(i int, g Segment) func() {
		snd := transport.NewSender(2+i, path, exp.NewController(s, g.Proto))
		snd.Burst = exp.BurstFor(g.Proto)
		snd.Survival = hasFaults
		snd.Start()
		competitors = append(competitors, snd)
		return snd.Stop
	})
	if hasFaults {
		chaos.ApplySim(s, link, path, faultPlan, sc.Duration)
	}

	n := int(math.Ceil(sc.Duration))
	rc := &RunContext{
		Scenario: sc, Schedule: schedule, Seed: seed,
		TargetMbps:      make([]float64, 0, n),
		CompMbps:        make([]float64, 0, n),
		PacingMbps:      make([]float64, 0, n),
		CWnd:            make([]float64, 0, n),
		HybridThreshold: hybridTau,
	}
	var lastTarget, lastComp int64
	for sec := 1; sec <= n; sec++ {
		s.At(float64(sec), func() {
			rc.TargetMbps = append(rc.TargetMbps, float64(target.AckedBytes()-lastTarget)*8/1e6)
			lastTarget = target.AckedBytes()
			var comp int64
			for _, c := range competitors {
				comp += c.AckedBytes()
			}
			rc.CompMbps = append(rc.CompMbps, float64(comp-lastComp)*8/1e6)
			lastComp = comp
			rc.PacingMbps = append(rc.PacingMbps, cc.PacingRate()*8/1e6)
			rc.CWnd = append(rc.CWnd, cc.CWnd())
		})
	}
	s.Run(sc.Duration)

	rc.Events = rec.Events(1)
	rc.Acked = target.AckedBytes()
	rc.LinkStats = link.Stats()
	return rc
}

// meanOver returns the mean of samples[lo:hi) clamped to the slice,
// or 0 when the window is empty. Indices are seconds.
func meanOver(samples []float64, lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(samples) {
		hi = len(samples)
	}
	if hi <= lo {
		return 0
	}
	s := 0.0
	for _, v := range samples[lo:hi] {
		s += v
	}
	return s / float64(hi-lo)
}
