package adversary

import (
	"testing"

	"pccproteus/internal/chaos"
)

func TestFaultSegmentsClampAndConvert(t *testing.T) {
	sc := testScenario("cubic")
	s := Schedule{Segments: []Segment{
		{Kind: KindBlackout, At: 11, Dur: 50, Factor: 2, Value: 3, Proto: "x"}, // over maxBlackoutDur, junk fields
		{Kind: KindCorrupt, At: 12, Dur: 2, Value: 0.9},                        // prob over the envelope
		{Kind: KindDuplicate, At: 12, Dur: 2, Value: 0},                        // prob under it
		{Kind: KindAckBlackout, At: 13, Dur: 1},
		{Kind: KindBWStep, At: 10, Dur: 2, Factor: 0.5}, // not a fault
	}}
	c := s.Canonical(sc)
	if len(c.Segments) != 5 {
		t.Fatalf("segments: %v", c.Segments)
	}
	for _, g := range c.Segments {
		switch g.Kind {
		case KindBlackout:
			if g.Dur != maxBlackoutDur || g.Factor != 0 || g.Value != 0 || g.Proto != "" {
				t.Errorf("blackout not clamped/cleared: %+v", g)
			}
		case KindCorrupt:
			if g.Value != maxFaultProb {
				t.Errorf("corrupt prob not clamped: %+v", g)
			}
		case KindDuplicate:
			if g.Value != minFaultProb {
				t.Errorf("duplicate prob not floored: %+v", g)
			}
		}
	}

	plan, ok := c.FaultPlan()
	if !ok || len(plan.Faults) != 4 {
		t.Fatalf("FaultPlan must carry exactly the fault segments: %v", plan.Faults)
	}
	kinds := map[chaos.Kind]bool{}
	for _, f := range plan.Faults {
		kinds[f.Kind] = true
	}
	for _, k := range []chaos.Kind{chaos.KindBlackout, chaos.KindAckBlackout, chaos.KindCorrupt, chaos.KindDuplicate} {
		if !kinds[k] {
			t.Errorf("plan missing %s: %v", k, plan.Faults)
		}
	}
	if _, ok := (Schedule{Segments: []Segment{{Kind: KindBWStep, At: 10, Dur: 2, Factor: 0.5}}}).FaultPlan(); ok {
		t.Error("a fault-free schedule must report no plan")
	}
}

func TestBlackoutOverlapsIncludesSettle(t *testing.T) {
	s := Schedule{Segments: []Segment{
		{Kind: KindBlackout, At: 20, Dur: 2},
		{Kind: KindLossBurst, At: 30, Dur: 2, Value: 0.1},
	}}
	cases := []struct {
		a, b float64
		want bool
	}{
		{10, 19, false},
		{15, 21, true},                         // overlaps the outage
		{22, 24, true},                         // inside the settle grace
		{22 + blackoutSettle + 0.1, 40, false}, // past the grace
		{29, 33, false},                        // loss bursts are not blackouts
	}
	for _, c := range cases {
		if got := s.blackoutOverlaps(c.a, c.b); got != c.want {
			t.Errorf("blackoutOverlaps(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestRunSurvivesBlackoutSegment runs a schedule whose only
// perturbation is a mid-run blackout and checks the full contract: the
// fault leaves link-level attribution, the survival machinery arms
// (because fault segments are present) and trips exactly once, and no
// invariant — in particular progress, whose blackout windows are
// excused — is violated.
func TestRunSurvivesBlackoutSegment(t *testing.T) {
	sc := testScenario("proteus-p")
	s := Schedule{Segments: []Segment{{Kind: KindBlackout, At: 12, Dur: 2}}}
	rc := Run(sc, s, 1)
	if rc.LinkStats.FaultDrop == 0 {
		t.Fatalf("blackout left no attribution: %+v", rc.LinkStats)
	}
	for _, v := range CheckAll(rc) {
		if v.Violated() {
			t.Errorf("invariant violated under a pure blackout: %s", v)
		}
	}
	// The same schedule minus the blackout must run identically to a
	// fault-free Run (Survival stays off): acked bytes must differ only
	// because of the outage itself, not because arming survival
	// perturbed the clean path.
	clean := Run(sc, Schedule{}, 1)
	if rc.Acked >= clean.Acked {
		t.Errorf("blackout run acked %d >= clean run %d", rc.Acked, clean.Acked)
	}
}
