package adversary

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"pccproteus/internal/chaos"
	"pccproteus/internal/core"
	"pccproteus/internal/exp"
	"pccproteus/internal/pathmodel"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

// Wire replay: a counterexample's impairment schedule, re-executed on
// the real UDP loopback datapath through the wire shim. The sim
// invariants cannot be re-judged there (wire runs are single-flow and
// real-time-compressed), so the wire pass checks its own, weaker
// properties — ones that must hold in any datapath claiming to emulate
// the schedule:
//
//   - wire-capacity: acked throughput cannot exceed the time-integral
//     of the emulated capacity (with slack for the queue draining).
//   - wire-progress: the flow must not stall outright.
//
// A counterexample that violates a sim invariant AND breaks these on
// the wire points at a controller bug; one that replays cleanly on the
// wire localizes the issue to sim-only dynamics.
const (
	// wireReplayDur is the real-time length of a wire replay. Hunt
	// schedules span 60–90 virtual seconds; replaying them 1:1 would
	// make `-replay -wire` painfully slow, so the schedule's timeline is
	// compressed onto this many wall seconds (rates, delays and loss
	// probabilities are preserved; only event times shrink).
	wireReplayDur = 12.0

	// wireCapTol is the slack factor on the capacity integral: the
	// receiver can momentarily ack faster than the long-run capacity
	// while the bottleneck queue drains.
	wireCapTol = 1.1
)

// WireReplay is the outcome of one counterexample replay on the wire.
type WireReplay struct {
	Scenario     Scenario
	TimeScale    float64 // virtual seconds per wire second
	Updates      []wire.ShimUpdate
	FaultPlan    *chaos.Plan // fault segments on the compressed clock, nil if none
	SkippedFlows int         // flow segments the single-flow wire path cannot run
	Result       *wire.LoopbackResult
	Verdicts     []Verdict
	Violations   []Verdict
}

// OK reports whether every wire invariant held.
func (w *WireReplay) OK() bool { return len(w.Violations) == 0 }

// WireSchedule compiles a counterexample's environment segments into
// timed shim updates on a compressed clock. Each update carries the
// full path state sampled from the same pure functions the simulator
// applied (RateAt/LossAt/DelayAt/QueueCapAt), so the wire shim walks
// through exactly the sequence of operating points the sim run did.
// Flow segments have no wire equivalent and are counted, not applied.
func WireSchedule(ce *Counterexample) (updates []wire.ShimUpdate, timeScale float64, skippedFlows int) {
	sc := ce.Scenario.withModel()
	sch := ce.Schedule.Canonical(sc)
	timeScale = sc.Duration / wireReplayDur
	if timeScale < 1 {
		timeScale = 1
	}
	boundaries := map[float64]struct{}{}
	add := func(t float64) {
		if t > 0 && t <= sc.Duration {
			boundaries[t] = struct{}{}
		}
	}
	// Path-model steps are change boundaries exactly as in the sim
	// applier, so the compressed wire schedule walks the same operating
	// points.
	if sc.model != nil {
		for _, st := range pathmodel.Steps(sc.model, sc.Duration) {
			add(st.At)
		}
	}
	for _, g := range sch.Segments {
		if g.Kind == KindFlow {
			skippedFlows++
			continue
		}
		if isFaultKind(g.Kind) {
			continue // replayed via the shim's chaos executor, not shim updates
		}
		add(g.At)
		add(g.end())
		if g.Kind == KindBWOsc {
			for t := g.At + g.Value; t < g.end(); t += g.Value {
				add(t)
			}
		}
	}
	times := make([]float64, 0, len(boundaries))
	for t := range boundaries {
		times = append(times, t)
	}
	sort.Float64s(times)
	for _, t := range times {
		updates = append(updates, wire.ShimUpdate{
			At:         t / timeScale,
			RateMbps:   sch.RateAt(sc, t),
			LossProb:   sch.LossAt(t),
			ExtraDelay: sch.DelayAt(sc, t) - sc.RTT/2,
			QueueBytes: sch.QueueCapAt(sc, t),
		})
	}
	return updates, timeScale, skippedFlows
}

// ReplayWire runs the counterexample's schedule through the wire shim
// and judges the wire invariants. It runs for wireReplayDur real
// seconds.
func ReplayWire(ce *Counterexample) (*WireReplay, error) {
	sc := ce.Scenario
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withModel()
	updates, timeScale, skipped := WireSchedule(ce)
	w := &WireReplay{
		Scenario: sc, TimeScale: timeScale,
		Updates: updates, SkippedFlows: skipped,
	}
	// Fault segments ride the same compressed clock as the shim updates:
	// the schedule's chaos plan, scaled onto wire time, replays through
	// the loopback harness's chaos executor.
	var chaosPlan *chaos.Plan
	plan, ok := ce.Schedule.Canonical(sc).FaultPlan()
	if sc.model != nil {
		if mp, mok := pathmodel.FaultPlan(sc.model, sc.Duration); mok {
			plan = pathmodel.MergePlans(plan, mp)
			ok = true
		}
	}
	if ok {
		scaled := plan.Scale(timeScale)
		chaosPlan = &scaled
		w.FaultPlan = &scaled
	}
	newCC := func() transport.Controller {
		rng := rand.New(rand.NewSource(wire.MixSeed(ce.Seed, 0x9a)))
		if sc.Proto == exp.ProtoProteusH {
			c, h := core.NewProteusH(rng)
			h.SetThreshold(hybridThresholdFor(sc))
			return c
		}
		return exp.NewControllerRNG(rng, sc.Proto)
	}
	res, err := wire.RunLoopback(wire.LoopbackConfig{
		NewController: newCC,
		Shim: wire.ShimConfig{
			RateMbps:   sc.LinkMbps,
			QueueBytes: sc.BufBytes,
			Delay:      sc.RTT / 2,
			AckDelay:   sc.RTT / 2,
			Seed:       wire.MixSeed(ce.Seed, 0x3c),
		},
		Duration:    wireReplayDur,
		MeasureFrom: sc.Warmup / timeScale,
		Schedule:    updates,
		Chaos:       chaosPlan,
	})
	if err != nil {
		return nil, err
	}
	w.Result = res
	w.Verdicts = checkWire(res)
	for _, v := range w.Verdicts {
		if v.Violated() {
			w.Violations = append(w.Violations, v)
		}
	}
	return w, nil
}

// checkWire evaluates the wire invariants on a finished loopback run.
func checkWire(res *wire.LoopbackResult) []Verdict {
	// wire-capacity: acked bytes vs the capacity integral the shim
	// actually emulated (rate changes included), with queue-drain slack.
	capV := Verdict{Invariant: "wire-capacity", Margin: 1}
	if allowed := wireCapTol * res.CapacityMbps; allowed > 0 {
		acked := float64(res.Sender.AckedBytes) * 8 / 1e6 / wireReplayDur
		capV.Margin = clamp((allowed-acked)/allowed, -1, 1)
		capV.Detail = fmt.Sprintf("acked %.2f Mbps vs %.2f allowed (cap %.2f × %.1f)",
			acked, allowed, res.CapacityMbps, wireCapTol)
	}
	// wire-progress: the compressed schedule must not stall the flow.
	progV := Verdict{Invariant: "wire-progress"}
	meas := 0.0
	n := 0
	for _, m := range res.PerSecMbps[len(res.PerSecMbps)/2:] {
		meas += m
		n++
	}
	if n > 0 {
		meas /= float64(n)
	}
	progV.Margin = clamp(meas/progressFloor-1, -1, 1)
	progV.Detail = fmt.Sprintf("%.3f Mbps over the last %d s (floor %.2g)", meas, n, progressFloor)
	// wire-finite: the datapath's own numbers stay sane.
	finV := Verdict{Invariant: "wire-finite", Margin: 1}
	for _, x := range []float64{res.Mbps, res.MeanRTT, res.P95RTT, res.LossRate} {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			finV = Verdict{Invariant: "wire-finite", Margin: -1,
				Detail: fmt.Sprintf("non-finite or negative wire stat %v", x)}
			break
		}
	}
	return []Verdict{capV, progV, finV}
}

// Render formats the replay for the CLI.
func (w *WireReplay) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Wire replay: %s, compressed ×%.1f onto %.0f s\n",
		w.Scenario, w.TimeScale, wireReplayDur)
	fmt.Fprintf(&b, "shim updates: %d", len(w.Updates))
	if w.FaultPlan != nil {
		fmt.Fprintf(&b, "  chaos faults: %d", len(w.FaultPlan.Faults))
	}
	if w.SkippedFlows > 0 {
		fmt.Fprintf(&b, "  (skipped %d flow segment(s): wire path is single-flow)", w.SkippedFlows)
	}
	b.WriteByte('\n')
	r := w.Result
	fmt.Fprintf(&b, "throughput %.2f Mbps  meanRTT %.1f ms  p95RTT %.1f ms  loss %.2f%%  capacity(avg) %.2f Mbps\n",
		r.Mbps, r.MeanRTT*1e3, r.P95RTT*1e3, r.LossRate*100, r.CapacityMbps)
	fmt.Fprintf(&b, "shim: enq=%d drop=%d rand-loss=%d delivered=%d acks=%d overflow=%d\n",
		r.Shim.Enqueued, r.Shim.Dropped, r.Shim.LostRandom, r.Shim.Delivered, r.Shim.AcksRelay, r.Shim.Overflow)
	for _, v := range w.Verdicts {
		fmt.Fprintf(&b, "%s\n", v)
	}
	return b.String()
}
