package adversary

import (
	"fmt"
	"math"

	"pccproteus/internal/exp"
	"pccproteus/internal/trace"
)

// Verdict is one invariant's judgment of one run. Margin is a
// normalized distance to violation: positive means the invariant held
// with that much headroom, negative means it was violated by that
// much. The guided search minimizes the smallest margin, so a margin
// that shrinks continuously as behavior worsens is what steers the
// hunt toward a violation.
type Verdict struct {
	Invariant string  `json:"invariant"`
	Margin    float64 `json:"margin"`
	Detail    string  `json:"detail,omitempty"`
}

// Violated reports whether the invariant failed.
func (v Verdict) Violated() bool { return v.Margin < 0 }

func (v Verdict) String() string {
	state := "ok"
	if v.Violated() {
		state = "VIOLATED"
	}
	s := fmt.Sprintf("%-16s %-8s margin=%+.4f", v.Invariant, state, v.Margin)
	if v.Detail != "" {
		s += "  (" + v.Detail + ")"
	}
	return s
}

// Checker evaluates one behavioral invariant against a completed run.
type Checker interface {
	Name() string
	Check(rc *RunContext) Verdict
}

// Tunables of the invariant library. They are part of the
// counterexample contract: changing one can flip the verdict of a
// checked-in golden schedule, so treat them like a file-format version.
const (
	// RecoveryT is the settling time the recovery invariant grants
	// after the last perturbation ends, and recoveryWindow the
	// measurement window after that. Gradient-ascent controllers climb
	// multiplicatively (≈5–25% per ~6-MI decision), so recovering from
	// a deep cut to a 40 Mbps operating point takes tens of decisions.
	RecoveryT        = 20.0
	recoveryWindow   = 10.0
	recoveryFraction = 0.85 // must regain this share of the clean-run rate

	// rate-bound: an explicit pacing rate may not exceed
	// rateBoundTol × the best capacity seen over the trailing
	// rateBoundWin seconds, plus a small absolute slack. The window
	// forgives decision lag after a capacity drop; a violation means
	// the controller is genuinely pinned above the path.
	rateBoundWin = 5
	rateBoundTol = 4.0
	rateBoundMbp = 2.0 // absolute slack, Mbps

	// progress: in every progressWin-second window after warmup the
	// target must average at least progressFloor Mbps. The floor is
	// far below every controller's minimum rate; hitting it means a
	// stall (RTO storm, rate collapse), not politeness.
	progressWin   = 10
	progressFloor = 0.02

	// scavenger-yield: with a primary flow present for yieldGrace
	// seconds under otherwise-clean conditions, a scavenger must drop
	// to yieldFraction of its pre-arrival throughput.
	yieldGrace    = 15.0
	yieldFraction = 0.5
	yieldMinDur   = 25.0 // flow segments shorter than this are not judged
	yieldMinPre   = 2.0  // Mbps the scavenger must have been using to be judged

	// hybrid-floor: Proteus-H competing with a primary must keep at
	// least hybridFraction of its configured threshold.
	hybridFraction = 0.5
)

// scavengerProtos are the controllers expected to yield to primaries.
var scavengerProtos = map[string]bool{
	exp.ProtoProteusS: true,
	exp.ProtoLEDBAT:   true,
	exp.ProtoLEDBAT25: true,
	exp.ProtoBBRS:     true,
}

// primaryProtos is the set a flow segment must belong to for the
// yielding invariants to judge it.
var primaryProtos = map[string]bool{}

func init() {
	for _, p := range exp.Primaries {
		primaryProtos[p] = true
	}
}

// Checkers returns the invariant library for a target protocol: the
// universal checkers plus the role-specific ones.
func Checkers(proto string) []Checker {
	cs := []Checker{finiteChecker{}, rateBoundChecker{}, progressChecker{}, recoveryChecker{}}
	if scavengerProtos[proto] {
		cs = append(cs, scavengerYieldChecker{})
	}
	if proto == exp.ProtoProteusH {
		cs = append(cs, hybridFloorChecker{})
	}
	return cs
}

// CheckAll runs every applicable checker, in a fixed order.
func CheckAll(rc *RunContext) []Verdict {
	checkers := Checkers(rc.Scenario.Proto)
	out := make([]Verdict, len(checkers))
	for i, c := range checkers {
		out[i] = c.Check(rc)
		out[i].Invariant = c.Name()
	}
	return out
}

// MinMargin returns the smallest margin across verdicts — the fitness
// the guided search minimizes (+Inf for an empty list).
func MinMargin(vs []Verdict) float64 {
	m := math.Inf(1)
	for _, v := range vs {
		if v.Margin < m {
			m = v.Margin
		}
	}
	return m
}

// --- finite: no NaN, no infinity, no negative rate --------------------

// finiteChecker asserts numeric sanity of everything the controller
// reported: monitor-interval decisions, rate changes, utility samples,
// and the per-second pacing-rate/cwnd probes. Any NaN, infinity, or
// negative rate is an unconditional violation — these values feed
// multiplications in the rate controller and corrupt silently.
type finiteChecker struct{}

func (finiteChecker) Name() string { return "finite" }

func (finiteChecker) Check(rc *RunContext) Verdict {
	bad := func(detail string) Verdict {
		return Verdict{Margin: -1, Detail: detail}
	}
	for _, ev := range rc.Events {
		for _, x := range [4]float64{ev.A, ev.B, ev.C, ev.D} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return bad(fmt.Sprintf("non-finite payload in %s event at t=%.3f", ev.Kind, ev.T))
			}
		}
		if ev.Kind == trace.KindMIDecision && ev.D < 0 {
			return bad(fmt.Sprintf("negative base rate %.4g at t=%.3f", ev.D, ev.T))
		}
		if ev.Kind == trace.KindRateChange && ev.A < 0 {
			return bad(fmt.Sprintf("negative rate %.4g at t=%.3f", ev.A, ev.T))
		}
	}
	for i, p := range rc.PacingMbps {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return bad(fmt.Sprintf("bad pacing rate %v at t=%d", p, i+1))
		}
	}
	for i, w := range rc.CWnd {
		if math.IsNaN(w) || w < 0 { // +Inf cwnd is the rate-based convention
			return bad(fmt.Sprintf("bad cwnd %v at t=%d", w, i+1))
		}
	}
	return Verdict{Margin: 1}
}

// --- rate-bound: pacing stays tethered to capacity --------------------

type rateBoundChecker struct{}

func (rateBoundChecker) Name() string { return "rate-bound" }

func (rateBoundChecker) Check(rc *RunContext) Verdict {
	sc, sch := rc.Scenario, rc.Schedule
	// Capacity per second, from the same pure function the emulation
	// applied.
	caps := make([]float64, len(rc.PacingMbps))
	for i := range caps {
		caps[i] = sch.RateAt(sc, float64(i)+0.5)
	}
	v := Verdict{Margin: 1}
	for i, pace := range rc.PacingMbps {
		if pace <= 0 { // window-based controller: physically capacity-bound
			continue
		}
		best := 0.0
		for j := i - rateBoundWin + 1; j <= i; j++ {
			if j >= 0 && caps[j] > best {
				best = caps[j]
			}
		}
		bound := rateBoundTol*best + rateBoundMbp
		m := (bound - pace) / bound
		if m < v.Margin {
			v.Margin = m
			v.Detail = fmt.Sprintf("pacing %.2f Mbps vs bound %.2f Mbps at t=%d", pace, bound, i+1)
		}
	}
	v.Margin = clamp(v.Margin, -1, 1)
	return v
}

// --- progress: the flow never stalls ----------------------------------

type progressChecker struct{}

func (progressChecker) Name() string { return "progress" }

func (progressChecker) Check(rc *RunContext) Verdict {
	sc := rc.Scenario
	v := Verdict{Margin: 1}
	for lo := int(sc.Warmup); lo+progressWin <= len(rc.TargetMbps); lo += progressWin / 2 {
		// A window a blackout touches (plus the watchdog's settling
		// time) is excused: the path was destroyed, and not sending is
		// the survival machinery working, not a stall. Path-model outage
		// windows (satellite handovers) get the identical grace.
		if rc.Schedule.blackoutOverlaps(float64(lo), float64(lo+progressWin)) ||
			sc.outageOverlaps(float64(lo), float64(lo+progressWin)) {
			continue
		}
		tput := meanOver(rc.TargetMbps, lo, lo+progressWin)
		m := clamp(tput/progressFloor-1, -1, 1)
		if m < v.Margin {
			v.Margin = m
			v.Detail = fmt.Sprintf("%.4f Mbps over [%d,%d)s (floor %.2g)", tput, lo, lo+progressWin, progressFloor)
		}
	}
	return v
}

// --- recovery: perturbations end, throughput comes back ---------------

type recoveryChecker struct{}

func (recoveryChecker) Name() string { return "recovery" }

func (recoveryChecker) Check(rc *RunContext) Verdict {
	if rc.Baseline == nil {
		return Verdict{Margin: 1, Detail: "no baseline attached"}
	}
	sc := rc.Scenario
	start := int(rc.Schedule.quietAfter(sc) + RecoveryT)
	end := len(rc.TargetMbps)
	if start+int(recoveryWindow/2) > end {
		return Verdict{Margin: 1, Detail: "no recovery window"}
	}
	base := meanOver(rc.Baseline.TargetMbps, start, end)
	if base < 1 {
		return Verdict{Margin: 1, Detail: "baseline idle"}
	}
	got := meanOver(rc.TargetMbps, start, end)
	m := clamp(got/(recoveryFraction*base)-1, -1, 1)
	return Verdict{
		Margin: m,
		Detail: fmt.Sprintf("%.2f Mbps over [%d,%d)s vs %.0f%% of clean %.2f", got, start, end, recoveryFraction*100, base),
	}
}

// --- scavenger-yield: a scavenger backs off when a primary arrives ----

type scavengerYieldChecker struct{}

func (scavengerYieldChecker) Name() string { return "scavenger-yield" }

func (scavengerYieldChecker) Check(rc *RunContext) Verdict {
	v := Verdict{Margin: 1, Detail: "no qualifying primary window"}
	for _, g := range rc.Schedule.Segments {
		if g.Kind != KindFlow || !primaryProtos[g.Proto] || g.Dur < yieldMinDur {
			continue
		}
		// Only judge clean competition: an overlapping loss burst or
		// capacity cut suppresses the primary itself, and failing to
		// yield to a flow that cannot use the link is not a bug.
		if rc.Schedule.envOverlaps(g.At-recoveryWindow, g.end()) {
			continue
		}
		pre := meanOver(rc.TargetMbps, int(g.At-recoveryWindow), int(g.At))
		if pre < yieldMinPre {
			continue
		}
		during := meanOver(rc.TargetMbps, int(g.At+yieldGrace), int(g.end()))
		m := clamp(1-during/(yieldFraction*pre), -1, 1)
		if m < v.Margin || v.Detail == "no qualifying primary window" {
			v.Margin = m
			v.Detail = fmt.Sprintf("%.2f Mbps beside %s vs %.2f before (must drop to %.0f%%)",
				during, g.Proto, pre, yieldFraction*100)
		}
	}
	return v
}

// --- hybrid-floor: Proteus-H defends its threshold --------------------

type hybridFloorChecker struct{}

func (hybridFloorChecker) Name() string { return "hybrid-floor" }

func (hybridFloorChecker) Check(rc *RunContext) Verdict {
	tau := rc.HybridThreshold
	if tau <= 0 {
		return Verdict{Margin: 1, Detail: "no threshold configured"}
	}
	v := Verdict{Margin: 1, Detail: "no qualifying primary window"}
	for _, g := range rc.Schedule.Segments {
		if g.Kind != KindFlow || !primaryProtos[g.Proto] || g.Dur < yieldMinDur {
			continue
		}
		if rc.Schedule.envOverlaps(g.At-recoveryWindow, g.end()) {
			continue
		}
		during := meanOver(rc.TargetMbps, int(g.At+yieldGrace), int(g.end()))
		floor := hybridFraction * tau
		m := clamp(during/floor-1, -1, 1)
		if m < v.Margin || v.Detail == "no qualifying primary window" {
			v.Margin = m
			v.Detail = fmt.Sprintf("%.2f Mbps beside %s vs floor %.2f (τ=%.1f)", during, g.Proto, floor, tau)
		}
	}
	return v
}
