package adversary

import (
	"encoding/json"
	"fmt"
	"os"
)

// CounterexampleVersion tags the replay-file format. Bump it when the
// schedule schema or an invariant tunable changes semantics, so stale
// golden files fail loudly instead of re-verifying the wrong thing.
const CounterexampleVersion = 1

// Counterexample is a minimized failing schedule plus everything
// needed to reproduce its verdict: the scenario, the run seed, and the
// verdict the hunt recorded. It serializes to a small JSON replay file.
type Counterexample struct {
	Version  int      `json:"version"`
	Scenario Scenario `json:"scenario"`
	Seed     int64    `json:"seed"`
	Schedule Schedule `json:"schedule"`
	Verdict  Verdict  `json:"verdict"`
	Fitness  float64  `json:"fitness"`
	Note     string   `json:"note,omitempty"`
}

// WriteFile serializes the counterexample as indented JSON.
func (ce *Counterexample) WriteFile(path string) error {
	b, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadCounterexample loads and validates a replay file.
func ReadCounterexample(path string) (*Counterexample, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ce Counterexample
	if err := json.Unmarshal(b, &ce); err != nil {
		return nil, fmt.Errorf("adversary: parsing %s: %w", path, err)
	}
	if ce.Version != CounterexampleVersion {
		return nil, fmt.Errorf("adversary: %s is replay-format v%d, this build expects v%d",
			path, ce.Version, CounterexampleVersion)
	}
	if err := ce.Scenario.Validate(); err != nil {
		return nil, err
	}
	return &ce, nil
}

// Replay re-runs the counterexample from scratch — fresh baseline,
// fresh perturbed run, full invariant sweep — and returns the
// verdicts. Callers compare against ce.Verdict to confirm the file
// still reproduces.
func (ce *Counterexample) Replay() ([]Verdict, *RunContext) {
	rc := Run(ce.Scenario, ce.Schedule, ce.Seed)
	rc.Baseline = NewBaseline(ce.Scenario, ce.Seed)
	return CheckAll(rc), rc
}

// ReplayFile loads a replay file, re-runs it, and reports whether the
// recorded verdict still reproduces (same invariant, still violated).
func ReplayFile(path string) (*Counterexample, []Verdict, error) {
	ce, err := ReadCounterexample(path)
	if err != nil {
		return nil, nil, err
	}
	vs, _ := ce.Replay()
	got := findVerdict(vs, ce.Verdict.Invariant)
	if got.Invariant == "" {
		return ce, vs, fmt.Errorf("adversary: invariant %q not in checker set for %s",
			ce.Verdict.Invariant, ce.Scenario.Proto)
	}
	if got.Violated() != ce.Verdict.Violated() {
		return ce, vs, fmt.Errorf("adversary: %s no longer reproduces: recorded %s, replay %s",
			path, ce.Verdict, got)
	}
	return ce, vs, nil
}
