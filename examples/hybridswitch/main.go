// Hybridswitch: the flexibility goal (§2.3) in action. A cloud-storage
// sync flow runs as a scavenger; mid-flow the user opens one of the
// files, so the application flips the SAME connection to primary mode
// with a single API call, and later flips it back — no reconnect, no
// second protocol stack.
//
//	go run ./examples/hybridswitch
package main

import (
	"fmt"

	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func main() {
	s := sim.New(21)
	link := netem.NewLink(s, 50, 375000, 0.015)
	path := &netem.Path{Link: link, AckDelay: 0.015}

	// A competing video call (primary) occupies the link throughout.
	video := transport.NewSender(1, path, core.NewProteusP(s.Rand()))
	video.Start()

	// The cloud-sync flow starts as a scavenger...
	sync := core.NewProteusS(s.Rand())
	syncSnd := transport.NewSender(2, path, sync)
	s.At(10, func() { syncSnd.Start() })

	// ...the user clicks "open file" at t=80: flip to primary...
	s.At(80, func() {
		fmt.Println(">>> t=80: user requests a file — SetUtility(primary)")
		sync.SetUtility(core.NewPrimary())
	})
	// ...and the download finishes at t=140: back to scavenging.
	s.At(140, func() {
		fmt.Println(">>> t=140: file delivered — SetUtility(scavenger)")
		sync.SetUtility(core.NewScavenger())
	})

	fmt.Println("t(s)   video(Mbps)   sync(Mbps)   sync-utility")
	var lastV, lastS int64
	for t := 10.0; t <= 200; t += 10 {
		t := t
		s.At(t+0.001, func() {
			v := float64(video.AckedBytes()-lastV) * 8 / 10 / 1e6
			sy := float64(syncSnd.AckedBytes()-lastS) * 8 / 10 / 1e6
			lastV, lastS = video.AckedBytes(), syncSnd.AckedBytes()
			fmt.Printf("%4.0f %12.2f %12.2f   %s\n", t, v, sy, sync.Utility().Name())
		})
	}
	s.Run(200)
	fmt.Println("\nOne connection, one codebase, three service levels over its lifetime.")
}
