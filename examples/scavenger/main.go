// Scavenger: the paper's motivating scenario. A long-running background
// backup uses Proteus-S; a primary download (Proteus-P) comes and goes.
// The scavenger yields while the primary is active and reclaims the link
// the moment it leaves — the "Alice and Bob" story of §1.
//
//	go run ./examples/scavenger
package main

import (
	"fmt"

	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func main() {
	s := sim.New(7)
	link := netem.NewLink(s, 50, 375000, 0.015)
	path := &netem.Path{Link: link, AckDelay: 0.015}

	backup := transport.NewSender(1, path, core.NewProteusS(s.Rand()))
	primary := transport.NewSender(2, path, core.NewProteusP(s.Rand()))

	backup.Start()                       // Bob's backup runs from t=0
	s.At(40, func() { primary.Start() }) // Alice starts her download
	s.At(120, func() { primary.Stop() }) // ...and finishes

	fmt.Println("phase                      t(s)   backup(Mbps)  primary(Mbps)")
	var lastB, lastP int64
	phase := func(t float64) string {
		switch {
		case t <= 40:
			return "backup alone       "
		case t <= 120:
			return "primary competing  "
		default:
			return "primary departed   "
		}
	}
	for t := 5.0; t <= 180; t += 5 {
		t := t
		s.At(t, func() {
			b := float64(backup.AckedBytes()-lastB) * 8 / 5 / 1e6
			p := float64(primary.AckedBytes()-lastP) * 8 / 5 / 1e6
			lastB, lastP = backup.AckedBytes(), primary.AckedBytes()
			fmt.Printf("%s %6.0f %14.2f %14.2f\n", phase(t), t, b, p)
		})
	}
	s.Run(180)
	fmt.Println("\nThe backup saturates the idle link, collapses to scraps while the")
	fmt.Println("primary is active, and recovers within seconds of its departure.")
}
