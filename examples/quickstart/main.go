// Quickstart: run one PCC Proteus (primary mode) flow over an emulated
// 50 Mbps / 30 ms bottleneck and watch it converge.
//
//	go run ./examples/quickstart [-seed N]
package main

import (
	"flag"
	"fmt"

	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/stats"
	"pccproteus/internal/transport"
	"pccproteus/internal/wire"
)

func main() {
	seed := flag.Int64("seed", 0, "simulation seed (0 = the historical default, 42)")
	flag.Parse()

	// 1. A deterministic virtual-time simulation. Nonzero seeds go
	// through the same splitmix64 whitening the benchmark driver uses,
	// so quickstart -seed N and proteusbench -seed N explore the same
	// RNG streams for the same N.
	simSeed := int64(42)
	if *seed != 0 {
		simSeed = wire.MixSeed(*seed, 0x55)
	}
	s := sim.New(simSeed)

	// 2. The network: 50 Mbps bottleneck, 30 ms base RTT, 2·BDP buffer.
	link := netem.NewLink(s, 50, 375000, 0.015)
	path := &netem.Path{Link: link, AckDelay: 0.015}

	// 3. A Proteus-P controller on a sender.
	cc := core.NewProteusP(s.Rand())
	snd := transport.NewSender(1, path, cc)
	snd.RecordRTT = true
	snd.Start()

	// 4. Sample throughput each second for half a minute.
	fmt.Println("time(s)  throughput(Mbps)  rate(Mbps)  state")
	var last int64
	for t := 1.0; t <= 30; t++ {
		t := t
		s.At(t, func() {
			mbps := float64(snd.AckedBytes()-last) * 8 / 1e6
			last = snd.AckedBytes()
			fmt.Printf("%6.0f %17.2f %11.2f  %s\n", t, mbps, cc.RateMbps(), cc.State())
		})
	}
	s.Run(30)

	p95 := stats.Percentile(snd.RTTSamples(), 95)
	fmt.Printf("\n95th-percentile RTT: %.1f ms (base %.1f ms) — latency-aware by design\n",
		p95*1000, path.BaseRTT()*1000)
}
