// Customutility: the utility library is open — applications can express
// service levels beyond the built-in P/S/H modes (§3: "a library of
// utility functions, which may be tailored to different applications'
// needs"). Here a deadline-driven bulk transfer wants full priority
// until it has banked enough average throughput to meet its deadline,
// then degrades gracefully into a scavenger — a softer policy than
// Proteus-H's hard threshold.
//
//	go run ./examples/customutility
package main

import (
	"fmt"

	"pccproteus/internal/core"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func main() {
	s := sim.New(5)
	link := netem.NewLink(s, 50, 375000, 0.015)
	path := &netem.Path{Link: link, AckDelay: 0.015}

	// A long-lived primary flow shares the link.
	other := transport.NewSender(1, path, core.NewProteusP(s.Rand()))
	other.Start()

	// The deadline transfer: 300 MB due in 180 s ⇒ it needs ≥13.3 Mbps
	// on average. The custom utility blends primary and scavenger terms
	// by how far ahead of schedule the transfer is.
	const totalBytes = 300e6
	const deadline = 180.0
	var snd *transport.Sender

	p := core.NewPrimary()
	scv := core.NewScavenger()
	u := &core.Custom{
		Label: "deadline",
		Fn: func(m core.Metrics) float64 {
			now := s.Now()
			need := (totalBytes - float64(snd.AckedBytes())) * 8 / 1e6 // Mbit left
			remaining := deadline - now
			if remaining <= 0 {
				return p.Utility(m) // past due: full priority
			}
			requiredMbps := need / remaining
			// Blend: fully primary when the required rate is at/above
			// what we're getting, fully scavenger when we're 2× ahead
			// of schedule.
			urgency := requiredMbps / (m.RateMbps + 1e-9)
			if urgency > 1 {
				urgency = 1
			}
			return urgency*p.Utility(m) + (1-urgency)*scv.Utility(m)
		},
	}
	cc := core.New("deadline", core.ProteusConfig(s.Rand()), u)
	snd = transport.NewSender(2, path, cc)
	snd.Limit = totalBytes
	done := false
	snd.OnComplete = func(now float64) {
		done = true
		fmt.Printf("\n>>> transfer complete at t=%.1f s (deadline %.0f s)\n", now, deadline)
	}
	snd.Start()

	fmt.Println("t(s)  other(Mbps)  deadline(Mbps)  required(Mbps)")
	var lastO, lastD int64
	for t := 10.0; t <= 200; t += 10 {
		t := t
		s.At(t, func() {
			if done {
				return
			}
			o := float64(other.AckedBytes()-lastO) * 8 / 10 / 1e6
			d := float64(snd.AckedBytes()-lastD) * 8 / 10 / 1e6
			lastO, lastD = other.AckedBytes(), snd.AckedBytes()
			need := (totalBytes - float64(snd.AckedBytes())) * 8 / 1e6 / (deadline - t)
			fmt.Printf("%4.0f %12.2f %15.2f %15.2f\n", t, o, d, need)
		})
	}
	s.Run(200)
	if !done {
		fmt.Println("\n>>> transfer missed its deadline")
	}
	fmt.Println("The custom utility floats between primary and scavenger pressure")
	fmt.Println("depending on how far ahead of its deadline the transfer is.")
}
