// Videostream: the §6.3 hybrid-mode scenario. One 4K and three 1080P
// BOLA players share a constrained bottleneck, first with every sender
// in Proteus-P (fair sharing — the 4K stream cannot reach its top
// bitrate), then with every sender in Proteus-H (streams that already
// render their highest quality yield their excess share).
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"math/rand"

	"pccproteus/internal/core"
	"pccproteus/internal/dash"
	"pccproteus/internal/netem"
	"pccproteus/internal/sim"
	"pccproteus/internal/transport"
)

func run(mode string) {
	s := sim.New(11)
	link := netem.NewLink(s, 110, 900000, 0.015)
	path := &netem.Path{Link: link, AckDelay: 0.015}

	corpus := dash.Corpus(1, 3, rand.New(rand.NewSource(3)))
	players := make([]*dash.Player, len(corpus))
	for i, v := range corpus {
		var cc transport.Controller
		var hybrid *core.Hybrid
		if mode == "hybrid" {
			c, h := core.NewProteusH(s.Rand())
			cc, hybrid = c, h
		} else {
			cc = core.NewProteusP(s.Rand())
		}
		snd := transport.NewSender(i+1, path, cc)
		p := dash.NewPlayer(s, snd, v, dash.NewBOLA(24), 24)
		p.Hybrid = hybrid // nil in primary mode
		players[i] = p
		p.Start()
	}
	s.Run(180)

	fmt.Printf("--- all senders in %s mode (110 Mbps shared) ---\n", mode)
	for i, p := range players {
		m := p.Metrics()
		fmt.Printf("  %-6s avg bitrate %6.2f Mbps   rebuffer %5.2f%%   top-rung chunks %d/%d\n",
			corpus[i].Name, m.AvgBitrate(), m.RebufferRatio()*100, m.HighestChunks, m.ChunksPlayed)
	}
}

func main() {
	run("primary")
	run("hybrid")
	fmt.Println("\nIn hybrid mode the 1080P players cap their demand once their top")
	fmt.Println("bitrate streams smoothly (§4.4 threshold rules), freeing headroom")
	fmt.Println("for the 4K stream.")
}
